//! Property-based acceptance of the DDR4 conformance sanitizer.
//!
//! Two obligations, from opposite directions:
//!
//! 1. **Soundness of the controller**: random multi-source traffic through
//!    every scheduling policy must replay with *zero* timing violations —
//!    the controller's enforcement and the sanitizer's JEDEC rules must
//!    agree exactly, or every co-run result built on the controller is
//!    suspect.
//! 2. **Sensitivity of the sanitizer**: a controller deliberately
//!    scheduled with broken timing parameters, replayed against the
//!    correct reference bin, must be flagged — otherwise rule 1 passes
//!    vacuously.

use pccs_dram::config::DramConfig;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::timing::DramTiming;
use pccs_dram::traffic::StreamTraffic;
use proptest::prelude::*;

const ALL_POLICIES: [PolicyKind; 5] = [
    PolicyKind::Fcfs,
    PolicyKind::FrFcfs,
    PolicyKind::Atlas,
    PolicyKind::Tcm,
    PolicyKind::Sms,
];

/// Builds a system under `config`/`policy` with `sources` random streams
/// and the sanitizer attached, runs it, and returns the report.
fn run_random_traffic(
    config: DramConfig,
    policy: PolicyKind,
    sources: &[(f64, f64, f64)], // (demand GB/s, row locality, write fraction)
    seed: u64,
    horizon: u64,
) -> pccs_dram::conformance::ConformanceReport {
    let mut sys = DramSystem::new(config, policy);
    for (idx, &(gbps, locality, writes)) in sources.iter().enumerate() {
        sys.add_generator(
            StreamTraffic::builder(SourceId(idx))
                .demand_gbps(gbps)
                .row_locality(locality)
                .write_fraction(writes)
                .seed(seed ^ idx as u64)
                .build(),
        );
    }
    sys.enable_conformance();
    let out = sys.run(horizon);
    out.conformance.expect("sanitizer enabled")
}

fn arb_sources() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((5.0f64..60.0, 0.1f64..0.95, 0.0f64..0.5), 1..4)
}

proptest! {
    #[test]
    fn every_policy_replays_clean_on_random_traffic(
        sources in arb_sources(),
        seed in 0u64..1000,
    ) {
        for policy in ALL_POLICIES {
            let report = run_random_traffic(
                DramConfig::cmp_study(),
                policy,
                &sources,
                seed,
                12_000,
            );
            prop_assert!(report.commands > 0, "{policy:?} issued no commands");
            prop_assert!(
                report.is_clean(),
                "{policy:?} violated timing: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn lpddr4x_bin_replays_clean_too(
        sources in arb_sources(),
        seed in 0u64..1000,
    ) {
        // The Xavier preset uses the LPDDR4X timing bin and 16 banks, which
        // exercises the 4-bank-group tRRD_S/tRRD_L split differently.
        let report = run_random_traffic(
            DramConfig::xavier(),
            PolicyKind::FrFcfs,
            &sources,
            seed,
            12_000,
        );
        prop_assert!(report.is_clean(), "{}", report.summary());
    }
}

/// Deliberately mis-schedules with `break_timing` applied, validates
/// against the unbroken bin, and returns the per-kind violation counts.
fn violations_with_broken(
    horizon: u64,
    break_timing: impl Fn(&mut DramTiming),
) -> std::collections::BTreeMap<String, u64> {
    let reference = DramConfig::cmp_study();
    let mut config = reference.clone();
    break_timing(&mut config.timing);
    let mut sys = DramSystem::new(config, PolicyKind::FrFcfs);
    // Low locality forces frequent precharge/activate cycling so the
    // activate- and precharge-related constraints are exercised densely.
    sys.add_generator(
        StreamTraffic::builder(SourceId(0))
            .demand_gbps(60.0)
            .row_locality(0.2)
            .build(),
    );
    sys.add_generator(
        StreamTraffic::builder(SourceId(1))
            .demand_gbps(40.0)
            .row_locality(0.3)
            .write_fraction(0.4)
            .seed(7)
            .build(),
    );
    sys.enable_conformance_against(reference.timing);
    let out = sys.run(horizon);
    out.conformance.expect("sanitizer enabled").per_kind
}

#[test]
fn halved_trcd_is_flagged() {
    let per_kind = violations_with_broken(20_000, |t| t.t_rcd /= 2);
    assert!(per_kind.contains_key("trcd"), "{per_kind:?}");
}

#[test]
fn halved_trp_is_flagged() {
    let per_kind = violations_with_broken(20_000, |t| t.t_rp /= 2);
    assert!(per_kind.contains_key("trp"), "{per_kind:?}");
}

#[test]
fn zeroed_activate_pacing_is_flagged() {
    let per_kind = violations_with_broken(20_000, |t| {
        t.t_rrd_s = 0;
        t.t_rrd_l = 0;
        t.t_faw = 0;
    });
    assert!(
        per_kind.contains_key("trrd-s")
            || per_kind.contains_key("trrd-l")
            || per_kind.contains_key("tfaw"),
        "{per_kind:?}"
    );
}

#[test]
fn shortened_tras_is_flagged() {
    let per_kind = violations_with_broken(20_000, |t| t.t_ras /= 3);
    assert!(per_kind.contains_key("tras"), "{per_kind:?}");
}

#[test]
fn stretched_refresh_interval_is_flagged() {
    // Two stretched refresh gaps (4 x 12480 cycles each) must fit inside
    // the horizon for the checker to observe a REF-to-REF distance.
    let per_kind = violations_with_broken(120_000, |t| t.t_refi *= 4);
    assert!(per_kind.contains_key("refresh-late"), "{per_kind:?}");
}

#[test]
fn unbroken_timing_is_not_flagged_by_the_same_harness() {
    // Control: the harness itself (reference validation path included)
    // reports clean when nothing is broken.
    let per_kind = violations_with_broken(60_000, |_| {});
    assert!(per_kind.is_empty(), "{per_kind:?}");
}
