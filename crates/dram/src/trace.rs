//! Trace-driven simulation support.
//!
//! The paper's Section 2.3 study drives Ramulator from Pin-captured traces.
//! This module provides the equivalent front end: a plain-text trace format
//! (`cycle address R|W`, one request per line), a parser/serializer, and a
//! [`TraceSource`] that replays a trace into the memory system either at
//! its recorded timing or as fast as a request window allows.
//!
//! # Example
//!
//! ```
//! use pccs_dram::trace::{parse_trace, TraceSource, ReplayMode};
//! use pccs_dram::request::SourceId;
//! use pccs_dram::{DramConfig, DramSystem, PolicyKind};
//!
//! let text = "0 0x0 R\n4 0x40 R\n8 0x80 W\n";
//! let records = parse_trace(text)?;
//! let mut sys = DramSystem::new(DramConfig::cmp_study(), PolicyKind::FrFcfs);
//! sys.add_generator(TraceSource::new(SourceId(0), records, ReplayMode::Timed));
//! let out = sys.run(1_000);
//! assert_eq!(out.completed[&SourceId(0)], 3);
//! # Ok::<(), pccs_dram::trace::TraceParseError>(())
//! ```

use crate::config::DramConfig;
use crate::controller::Completion;
use crate::request::{MemoryRequest, ReqKind, SourceId};
use crate::traffic::TrafficSource;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Earliest cycle the request may be issued.
    pub cycle: u64,
    /// Physical byte address.
    pub addr: u64,
    /// Read or write.
    pub kind: ReqKind,
}

/// How a [`TraceSource`] paces its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Respect each record's cycle stamp (open-loop, timing-faithful).
    Timed,
    /// Ignore stamps; issue as fast as the window allows (closed-loop,
    /// bandwidth-probing).
    AsFast {
        /// Maximum outstanding requests.
        window: usize,
    },
}

/// A trace parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for TraceParseError {}

/// Parses the plain-text trace format: one `cycle address R|W` triple per
/// line; addresses accept decimal or `0x` hex; blank lines and lines
/// starting with `#` are skipped.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let err = |reason: &str| TraceParseError {
            line,
            reason: reason.to_owned(),
        };
        let cycle: u64 = parts
            .next()
            .ok_or_else(|| err("missing cycle"))?
            .parse()
            .map_err(|_| err("bad cycle"))?;
        let addr_str = parts.next().ok_or_else(|| err("missing address"))?;
        let addr = if let Some(hex) = addr_str.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err("bad hex address"))?
        } else {
            addr_str.parse().map_err(|_| err("bad address"))?
        };
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "R" | "r" => ReqKind::Read,
            "W" | "w" => ReqKind::Write,
            other => {
                return Err(TraceParseError {
                    line,
                    reason: format!("unknown kind '{other}'"),
                })
            }
        };
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
        records.push(TraceRecord { cycle, addr, kind });
    }
    Ok(records)
}

/// Serializes records into the text format accepted by [`parse_trace`].
pub fn format_trace(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let k = match r.kind {
            ReqKind::Read => 'R',
            ReqKind::Write => 'W',
        };
        out.push_str(&format!("{} 0x{:x} {}\n", r.cycle, r.addr, k));
    }
    out
}

/// Replays a trace as a [`TrafficSource`].
#[derive(Debug)]
pub struct TraceSource {
    source: SourceId,
    records: VecDeque<TraceRecord>,
    mode: ReplayMode,
    line_bytes: u32,
    outstanding: usize,
    issued: u64,
    completed: u64,
    retry: Option<MemoryRequest>,
}

impl TraceSource {
    /// Creates a replayer over `records` (must be sorted by cycle for
    /// [`ReplayMode::Timed`]; enforced here).
    ///
    /// # Panics
    ///
    /// Panics in timed mode when the records are not sorted by cycle.
    pub fn new(source: SourceId, records: Vec<TraceRecord>, mode: ReplayMode) -> Self {
        if matches!(mode, ReplayMode::Timed) {
            assert!(
                records.windows(2).all(|w| w[1].cycle >= w[0].cycle),
                "timed replay requires cycle-sorted records"
            );
        }
        Self {
            source,
            records: records.into(),
            mode,
            line_bytes: 64,
            outstanding: 0,
            issued: 0,
            completed: 0,
            retry: None,
        }
    }

    /// Records still waiting to be issued.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl TrafficSource for TraceSource {
    fn source_id(&self) -> SourceId {
        self.source
    }

    fn bind(&mut self, config: &DramConfig) {
        self.line_bytes = config.line_bytes;
    }

    fn poll(&mut self, cycle: u64) -> Option<MemoryRequest> {
        if let Some(req) = self.retry.take() {
            return Some(req);
        }
        let ready = match (self.records.front(), self.mode) {
            (Some(r), ReplayMode::Timed) => r.cycle <= cycle,
            (Some(_), ReplayMode::AsFast { window }) => self.outstanding < window,
            (None, _) => false,
        };
        if !ready {
            return None;
        }
        let r = self.records.pop_front()?;
        let id = self.issued;
        self.issued += 1;
        self.outstanding += 1;
        let mut req = MemoryRequest::read(id, self.source, r.addr, cycle);
        req.kind = r.kind;
        req.bytes = self.line_bytes;
        Some(req)
    }

    fn on_reject(&mut self, req: MemoryRequest) {
        self.retry = Some(req);
    }

    fn on_complete(&mut self, _completion: &Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.completed += 1;
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn next_emit_at(&self, cycle: u64) -> Option<u64> {
        if self.retry.is_some() {
            return Some(cycle);
        }
        match (self.records.front(), self.mode) {
            // Timed replay has no window gate: the next record's own
            // timestamp is the exact next emission cycle.
            (Some(r), ReplayMode::Timed) => Some(r.cycle.max(cycle)),
            (Some(_), ReplayMode::AsFast { window }) => {
                if self.outstanding < window {
                    Some(cycle)
                } else {
                    None // Unblocks on a completion — an executed cycle.
                }
            }
            (None, _) => None,
        }
    }
    // No fast_forward override: replay holds no per-cycle state.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::sim::DramSystem;

    #[test]
    fn parse_round_trips() {
        let records = vec![
            TraceRecord {
                cycle: 0,
                addr: 0x40,
                kind: ReqKind::Read,
            },
            TraceRecord {
                cycle: 7,
                addr: 4096,
                kind: ReqKind::Write,
            },
        ];
        let text = format_trace(&records);
        assert_eq!(parse_trace(&text).unwrap(), records);
    }

    #[test]
    fn parser_accepts_comments_and_decimal() {
        let text = "# header\n\n10 128 R\n";
        let r = parse_trace(text).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].addr, 128);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = parse_trace("0 0x0 R\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn parser_rejects_bad_kind_and_trailing() {
        assert!(parse_trace("0 0x0 X\n").is_err());
        assert!(parse_trace("0 0x0 R extra\n").is_err());
    }

    #[test]
    fn timed_replay_completes_all_records() {
        let records: Vec<TraceRecord> = (0..32)
            .map(|i| TraceRecord {
                cycle: i * 4,
                addr: i * 64,
                kind: ReqKind::Read,
            })
            .collect();
        let mut sys = DramSystem::new(DramConfig::cmp_study(), PolicyKind::FrFcfs);
        sys.add_generator(TraceSource::new(SourceId(0), records, ReplayMode::Timed));
        let out = sys.run(5_000);
        assert_eq!(out.completed[&SourceId(0)], 32);
    }

    #[test]
    fn as_fast_replay_respects_window() {
        let records: Vec<TraceRecord> = (0..64)
            .map(|i| TraceRecord {
                cycle: 0,
                addr: i * 64,
                kind: ReqKind::Read,
            })
            .collect();
        let mut src = TraceSource::new(SourceId(0), records, ReplayMode::AsFast { window: 4 });
        src.bind(&DramConfig::cmp_study());
        let mut got = 0;
        while src.poll(0).is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
        assert_eq!(src.remaining(), 60);
    }

    #[test]
    #[should_panic(expected = "cycle-sorted")]
    fn timed_mode_rejects_unsorted() {
        let records = vec![
            TraceRecord {
                cycle: 10,
                addr: 0,
                kind: ReqKind::Read,
            },
            TraceRecord {
                cycle: 5,
                addr: 64,
                kind: ReqKind::Read,
            },
        ];
        TraceSource::new(SourceId(0), records, ReplayMode::Timed);
    }
}
