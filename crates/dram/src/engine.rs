//! The memory-engine abstraction: one scheduling model, two drivers.
//!
//! [`MemoryEngine`] is the narrow waist between the DRAM model and every
//! consumer (the co-run simulator, the multi-controller system, sched
//! replay, serving, benchmarks). Two implementations exist:
//!
//! * the **cycle engine** — [`MemoryController`] itself, stepped on every
//!   cycle; the conformance reference, and
//! * the **event engine** — [`EventEngine`], which skips directly from one
//!   actionable timestamp to the next (bank-timing expiry, tRRD/tFAW
//!   window expiry, refresh deadline, policy epoch/quantum boundary, bus
//!   unblock, completion finish) and accounts the skipped span's stall
//!   statistics in closed form.
//!
//! The event engine is required to be **bit-identical** to the cycle
//! engine: same `MemoryStats`, same per-source latency histograms, same
//! command stream. `MemoryController::next_wake` returns a conservative
//! superset of actionable cycles (executing an extra cycle is always
//! exact — it just re-derives "nothing can issue" the slow way — while
//! skipping an actionable one would diverge), so skip-ahead preserves
//! JEDEC ordering by construction: every cycle at which a command could
//! legally issue is still simulated by the cycle-exact scheduler.
//! `crates/dram/tests/engine_parity.rs` asserts the equivalence across
//! policies and timing bins.

use crate::config::DramConfig;
use crate::conformance::ConformanceReport;
use crate::controller::{Completion, MemoryController};
use crate::request::{MemoryRequest, SourceId};
use crate::stats::MemoryStats;
use pccs_telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which [`MemoryEngine`] implementation drives the DRAM model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum EngineKind {
    /// The cycle-exact reference: every cycle is simulated.
    #[default]
    Cycle,
    /// The event-driven fast path: skip-ahead between actionable cycles,
    /// bit-identical to `Cycle` (asserted by the parity suite).
    Event,
}

impl EngineKind {
    /// All engine kinds, for sweeps and CLI help text.
    pub fn all() -> [EngineKind; 2] {
        [EngineKind::Cycle, EngineKind::Event]
    }

    /// Stable lower-case label (CLI value, JSON field).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Cycle => "cycle",
            EngineKind::Event => "event",
        }
    }

    /// Wraps a fully configured controller in this engine kind's driver.
    pub fn wrap(self, controller: MemoryController) -> Box<dyn MemoryEngine> {
        match self {
            EngineKind::Cycle => Box::new(controller),
            EngineKind::Event => Box::new(EventEngine::new(controller)),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(EngineKind::Cycle),
            "event" => Ok(EngineKind::Event),
            other => Err(format!(
                "unknown engine '{other}' (expected 'cycle' or 'event')"
            )),
        }
    }
}

/// A driver for the DRAM scheduling model.
///
/// The contract mirrors an event-driven simulation loop: callers enqueue
/// work, advance the engine to an executed cycle, drain the completions
/// that finished by then, and ask `next_event` where the next actionable
/// cycle is. The cycle engine answers "every cycle is actionable"; the
/// event engine answers with a conservative skip target. Either way the
/// externally observable behaviour — completions, statistics, telemetry,
/// command stream — must be identical.
pub trait MemoryEngine: fmt::Debug + Send {
    /// Attempts to enqueue a request at the current cycle.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the target channel queue is full
    /// (back-pressure); the caller should retry on a later cycle.
    fn enqueue(&mut self, req: MemoryRequest) -> Result<(), MemoryRequest>;

    /// Executes simulation work up to and including `cycle`. The engine
    /// may account intervening cycles in closed form, but the state after
    /// `advance_to(c)` must equal the cycle engine's state after ticking
    /// every cycle `..= c`, provided no cycle in the skipped span was
    /// actionable (guaranteed when callers respect `next_event`).
    fn advance_to(&mut self, cycle: u64);

    /// Appends all completions that finished at or before the last
    /// `advance_to` cycle to `out` in (finish, id, source) order. The
    /// buffer is caller-supplied and not cleared, so one allocation can
    /// serve the whole run.
    fn drain_completions(&mut self, out: &mut Vec<Completion>);

    /// The earliest cycle `>= from` the engine needs to execute: the next
    /// completion finish or controller wake-up. Returning `from` means
    /// "execute every cycle" (the cycle engine always does).
    fn next_event(&self, from: u64) -> u64;

    /// Closes out a run at exclusive `horizon`: accounts any remaining
    /// skipped span and pins `elapsed_cycles` to the horizon.
    fn finish(&mut self, horizon: u64);

    /// Statistics accumulated so far.
    fn stats(&self) -> &MemoryStats;

    /// Takes the accumulated statistics, leaving empty ones behind.
    fn take_stats(&mut self) -> MemoryStats;

    /// Number of queued (unissued) requests across all channels.
    fn pending(&self) -> usize;

    /// Number of queued requests for one source.
    fn pending_for(&self, source: SourceId) -> usize;

    /// The memory geometry this engine drives.
    fn config(&self) -> &DramConfig;

    /// The active scheduling policy's name.
    fn policy_name(&self) -> &'static str;

    /// Flushes the attached telemetry recorder at `cycle` and returns its
    /// report, if a recorder is attached and produces one.
    fn take_report(&mut self, cycle: u64) -> Option<TelemetryReport>;

    /// Replays the observed command stream and returns the conformance
    /// report, or `None` when the sanitizer was never enabled.
    fn conformance_report(&self) -> Option<ConformanceReport>;
}

impl MemoryEngine for MemoryController {
    fn enqueue(&mut self, req: MemoryRequest) -> Result<(), MemoryRequest> {
        self.try_enqueue(req)
    }

    fn advance_to(&mut self, cycle: u64) {
        // The cycle engine executes every cycle; callers driven by
        // `next_event` only ever ask for one cycle at a time, but catch up
        // honestly if they don't.
        let mut c = self.advanced_to();
        while c <= cycle {
            self.step(c);
            c += 1;
        }
        self.set_advanced_to(c);
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        let advanced = self.advanced_to();
        self.drain_up_to(advanced.saturating_sub(1), out);
    }

    fn next_event(&self, from: u64) -> u64 {
        from
    }

    fn finish(&mut self, horizon: u64) {
        let mut c = self.advanced_to();
        while c < horizon {
            self.step(c);
            c += 1;
        }
        self.set_advanced_to(c.max(horizon));
    }

    fn stats(&self) -> &MemoryStats {
        self.stats()
    }

    fn take_stats(&mut self) -> MemoryStats {
        self.take_stats()
    }

    fn pending(&self) -> usize {
        self.pending()
    }

    fn pending_for(&self, source: SourceId) -> usize {
        self.pending_for(source)
    }

    fn config(&self) -> &DramConfig {
        self.config()
    }

    fn policy_name(&self) -> &'static str {
        self.policy_name()
    }

    fn take_report(&mut self, cycle: u64) -> Option<TelemetryReport> {
        self.take_report(cycle)
    }

    fn conformance_report(&self) -> Option<ConformanceReport> {
        self.conformance_report()
    }
}

/// The event-driven skip-ahead driver around a [`MemoryController`].
///
/// Invariants (see DESIGN.md §11):
///
/// 1. `cursor` is the first unexecuted cycle; all controller state is
///    exactly the cycle engine's state after ticking `..cursor`.
/// 2. A span is skipped only when `next_wake` proves no cycle in it is
///    actionable; the skipped span's stall statistics are accounted in
///    closed form by `skip_cycles` with the same per-cycle classification
///    ticking would produce.
/// 3. Every command the controller emits is still chosen by the
///    cycle-exact scheduler at an executed cycle, so JEDEC
///    ordering/timing is preserved untouched — skip-ahead never
///    fabricates issue opportunities, it only fast-forwards over proven
///    stalls.
#[derive(Debug)]
pub struct EventEngine {
    ctrl: MemoryController,
    /// First cycle not yet executed.
    cursor: u64,
}

impl EventEngine {
    /// Wraps a fully configured controller (recorder/conformance already
    /// attached) in the skip-ahead driver.
    pub fn new(ctrl: MemoryController) -> Self {
        Self { ctrl, cursor: 0 }
    }

    /// Unwraps back into the underlying controller.
    pub fn into_inner(self) -> MemoryController {
        self.ctrl
    }
}

impl MemoryEngine for EventEngine {
    fn enqueue(&mut self, req: MemoryRequest) -> Result<(), MemoryRequest> {
        // Settle the pending skip span *before* the queue mutates: the
        // span's stall classification must see the queue as it stood
        // during those cycles, exactly as per-cycle ticking would have.
        if req.arrival > self.cursor {
            self.ctrl.skip_cycles(self.cursor, req.arrival);
            self.cursor = req.arrival;
        }
        self.ctrl.try_enqueue(req)
    }

    fn advance_to(&mut self, cycle: u64) {
        if cycle < self.cursor {
            return;
        }
        // [cursor, cycle) was proven stall-only by next_event; account it
        // in closed form, then execute `cycle` exactly.
        self.ctrl.skip_cycles(self.cursor, cycle);
        self.ctrl.step(cycle);
        self.cursor = cycle + 1;
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        self.ctrl.drain_up_to(self.cursor.saturating_sub(1), out);
    }

    fn next_event(&self, from: u64) -> u64 {
        let wake = self.ctrl.next_wake(from);
        match self.ctrl.next_completion_at() {
            Some(finish) => wake.min(finish.max(from)),
            None => wake,
        }
    }

    fn finish(&mut self, horizon: u64) {
        // Even with no traffic left, refresh deadlines (and any remaining
        // bank-timing breakpoints) still fall inside the tail — execute
        // them so refresh state, REF conformance records, and stall
        // accounting match the cycle engine ticking out the horizon.
        while self.cursor < horizon {
            let next = self.next_event(self.cursor);
            if next >= horizon {
                self.ctrl.skip_cycles(self.cursor, horizon);
                self.cursor = horizon;
            } else {
                self.ctrl.skip_cycles(self.cursor, next);
                self.ctrl.step(next);
                self.cursor = next + 1;
            }
        }
    }

    fn stats(&self) -> &MemoryStats {
        self.ctrl.stats()
    }

    fn take_stats(&mut self) -> MemoryStats {
        self.ctrl.take_stats()
    }

    fn pending(&self) -> usize {
        self.ctrl.pending()
    }

    fn pending_for(&self, source: SourceId) -> usize {
        self.ctrl.pending_for(source)
    }

    fn config(&self) -> &DramConfig {
        self.ctrl.config()
    }

    fn policy_name(&self) -> &'static str {
        self.ctrl.policy_name()
    }

    fn take_report(&mut self, cycle: u64) -> Option<TelemetryReport> {
        self.ctrl.take_report(cycle)
    }

    fn conformance_report(&self) -> Option<ConformanceReport> {
        self.ctrl.conformance_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    #[test]
    fn engine_kind_round_trips_through_strings() {
        for kind in EngineKind::all() {
            assert_eq!(kind.label().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert!("hybrid".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Cycle);
    }

    #[test]
    fn both_engines_drain_a_simple_stream_identically() {
        let mk =
            || MemoryController::new(DramConfig::cmp_study(), PolicyKind::FrFcfs.instantiate());
        let mut outs: Vec<(Vec<Completion>, MemoryStats)> = Vec::new();
        for kind in EngineKind::all() {
            let mut engine = kind.wrap(mk());
            for i in 0..32u64 {
                engine
                    .enqueue(MemoryRequest::read(i, SourceId(0), i * 64 * 131, 0))
                    .unwrap();
            }
            let mut done = Vec::new();
            let mut now = 0u64;
            let horizon = 20_000u64;
            while now < horizon && done.len() < 32 {
                engine.advance_to(now);
                engine.drain_completions(&mut done);
                now = engine.next_event(now + 1).max(now + 1).min(horizon);
            }
            engine.finish(horizon);
            outs.push((done, engine.take_stats()));
        }
        assert_eq!(outs[0].0, outs[1].0, "completion streams differ");
        assert_eq!(outs[0].1, outs[1].1, "stats differ");
    }
}
