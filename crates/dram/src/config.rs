//! Memory-system configuration and the presets used throughout the paper.

use crate::timing::DramTiming;
use serde::{Deserialize, Serialize};

/// Configuration of a complete DRAM subsystem: geometry, clocking and the
/// controller queue.
///
/// Three presets reproduce the systems in the paper:
///
/// * [`DramConfig::cmp_study`] — the 16-core CMP simulation of Table 1
///   (DDR4-3200, 4 × 64-bit channels, 102.4 GB/s),
/// * [`DramConfig::xavier`] — NVIDIA Jetson AGX Xavier memory
///   (LPDDR4X, 8 × 32-bit channels, 136.5 GB/s, Table 6),
/// * [`DramConfig::snapdragon855`] — Qualcomm Snapdragon 855 memory
///   (LPDDR4X, 64-bit total, 34 GB/s, Table 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Device timing parameters (command-clock cycles).
    pub timing: DramTiming,
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Data-bus width of one channel in bytes (64-bit channel = 8).
    pub channel_width_bytes: u32,
    /// Row-buffer (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Command-clock frequency in MHz (data rate is twice this).
    pub clock_mhz: f64,
    /// Capacity of the controller request buffer, per channel.
    pub queue_capacity: usize,
    /// Interconnect line size in bytes (request granularity).
    pub line_bytes: u32,
}

impl DramConfig {
    /// The memory-controller simulation configuration of Table 1:
    /// DDR4-3200, 8 banks, 4 KB row buffer, single rank, 4 channels,
    /// 64-bit wide channel, 256-entry request buffer, 102.4 GB/s peak.
    pub fn cmp_study() -> Self {
        Self {
            timing: DramTiming::ddr4_3200(),
            channels: 4,
            banks_per_channel: 8,
            channel_width_bytes: 8,
            row_bytes: 4096,
            clock_mhz: 1600.0,
            queue_capacity: 256,
            line_bytes: 64,
        }
    }

    /// NVIDIA Jetson AGX Xavier memory subsystem: 256-bit LPDDR4X built from
    /// 8 × 32-bit channels at 2133 MHz (Table 6; theoretical peak
    /// 136.5 GB/s).
    pub fn xavier() -> Self {
        Self {
            timing: DramTiming::lpddr4x_4266(),
            channels: 8,
            banks_per_channel: 8,
            channel_width_bytes: 4,
            row_bytes: 2048,
            clock_mhz: 2133.0,
            queue_capacity: 256,
            line_bytes: 64,
        }
    }

    /// Qualcomm Snapdragon 855 memory subsystem: 64-bit LPDDR4X at 2133 MHz
    /// (Table 6; theoretical peak 34.1 GB/s), modelled as 2 × 32-bit
    /// channels.
    pub fn snapdragon855() -> Self {
        Self {
            timing: DramTiming::lpddr4x_4266(),
            channels: 2,
            banks_per_channel: 8,
            channel_width_bytes: 4,
            row_bytes: 2048,
            clock_mhz: 2133.0,
            queue_capacity: 256,
            line_bytes: 64,
        }
    }

    /// Theoretical peak bandwidth in GB/s:
    /// `channels × width × 2 (DDR) × clock`.
    pub fn peak_bw_gbps(&self) -> f64 {
        self.channels as f64 * self.channel_width_bytes as f64 * 2.0 * self.clock_mhz * 1.0e6
            / 1.0e9
    }

    /// Bytes one channel transfers per command-clock cycle at peak.
    pub fn channel_bytes_per_cycle(&self) -> u32 {
        self.channel_width_bytes * 2
    }

    /// Cycles of data-bus occupancy for one line transfer on one channel.
    pub fn burst_cycles(&self) -> u64 {
        u64::from(self.line_bytes.div_ceil(self.channel_bytes_per_cycle()))
    }

    /// Lines (columns) per row buffer.
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / u64::from(self.line_bytes)
    }

    /// Number of bank groups per channel. DDR4-style devices organize
    /// banks into four groups (ACTIVATE spacing inside a group pays
    /// tRRD_L, across groups tRRD_S); devices with fewer than four banks
    /// degenerate to one bank per group.
    pub fn bank_group_count(&self) -> usize {
        self.banks_per_channel.min(4)
    }

    /// The bank group a bank index belongs to (banks interleave across
    /// groups, matching the usual consecutive-bank striping).
    pub fn bank_group(&self, bank: usize) -> usize {
        bank % self.bank_group_count()
    }

    /// Converts a bandwidth in GB/s into bytes per command-clock cycle of
    /// this memory system.
    pub fn gbps_to_bytes_per_cycle(&self, gbps: f64) -> f64 {
        gbps * 1.0e9 / (self.clock_mhz * 1.0e6)
    }

    /// Converts bytes per command-clock cycle into GB/s.
    pub fn bytes_per_cycle_to_gbps(&self, bpc: f64) -> f64 {
        bpc * self.clock_mhz * 1.0e6 / 1.0e9
    }

    /// Returns a copy with the memory clock scaled by `ratio` (e.g. 0.5 to
    /// underclock 2133 MHz to 1066 MHz), used by the linear-scaling study of
    /// Section 3.3 / Table 5.
    pub fn with_clock_ratio(&self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "clock ratio must be positive");
        let mut c = self.clone();
        c.clock_mhz *= ratio;
        c
    }

    /// Returns a copy with a different channel count, used by
    /// memory-subsystem design exploration (Section 3.4).
    pub fn with_channels(&self, channels: usize) -> Self {
        assert!(channels > 0, "at least one channel required");
        let mut c = self.clone();
        c.channels = channels;
        c
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::cmp_study()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_study_peak_matches_table1() {
        let c = DramConfig::cmp_study();
        assert!((c.peak_bw_gbps() - 102.4).abs() < 1e-9);
    }

    #[test]
    fn xavier_peak_matches_table6() {
        let c = DramConfig::xavier();
        assert!((c.peak_bw_gbps() - 136.512).abs() < 0.1);
    }

    #[test]
    fn snapdragon_peak_matches_table6() {
        let c = DramConfig::snapdragon855();
        assert!((c.peak_bw_gbps() - 34.128).abs() < 0.1);
    }

    #[test]
    fn burst_cycles_ddr4_is_4() {
        // 64-byte line on a 64-bit channel: 8 beats = 4 command cycles.
        assert_eq!(DramConfig::cmp_study().burst_cycles(), 4);
    }

    #[test]
    fn burst_cycles_lpddr4_is_8() {
        // 64-byte line on a 32-bit channel: 16 beats = 8 command cycles.
        assert_eq!(DramConfig::xavier().burst_cycles(), 8);
    }

    #[test]
    fn gbps_round_trip() {
        let c = DramConfig::cmp_study();
        let bpc = c.gbps_to_bytes_per_cycle(51.2);
        assert!((c.bytes_per_cycle_to_gbps(bpc) - 51.2).abs() < 1e-9);
    }

    #[test]
    fn clock_ratio_scales_peak() {
        let c = DramConfig::xavier();
        let half = c.with_clock_ratio(0.5);
        assert!((half.peak_bw_gbps() - c.peak_bw_gbps() / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_ratio_panics() {
        DramConfig::xavier().with_clock_ratio(0.0);
    }

    #[test]
    fn columns_per_row_cmp() {
        assert_eq!(DramConfig::cmp_study().columns_per_row(), 64);
    }
}
