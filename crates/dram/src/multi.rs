//! Multi-memory-controller SoCs.
//!
//! The paper's Discussion (Section 5) notes that its target SoCs use one
//! MC with channel interleaving, and that the model "can be extended to
//! support [multi-MC] by considering specific address mappings and
//! coordinations between MCs". This module supplies that extension for the
//! substrate: a [`MultiMcSystem`] splits the channels of a memory geometry
//! across several independent controllers, each with its *own* scheduling
//! policy instance (fairness state is per-MC, exactly the coordination gap
//! the paper highlights), while consecutive lines still interleave across
//! all channels of all MCs.

use crate::config::DramConfig;
use crate::conformance::ConformanceReport;
use crate::controller::{Completion, MemoryController};
use crate::engine::{EngineKind, MemoryEngine};
use crate::policy::PolicyKind;
use crate::request::{MemoryRequest, SourceId};
use crate::sim::{MeasureWindow, SimOutcome};
use crate::stats::MemoryStats;
use crate::traffic::TrafficSource;
use pccs_telemetry::{EpochRecorder, TelemetryReport};
use std::collections::BTreeMap;

/// A memory system composed of several independent controllers.
#[derive(Debug)]
pub struct MultiMcSystem {
    total: DramConfig,
    per_mc: DramConfig,
    mcs: Vec<MemoryController>,
    engine: EngineKind,
    generators: Vec<Box<dyn TrafficSource>>,
}

impl MultiMcSystem {
    /// Splits `total` geometry across `mc_count` controllers running
    /// `policy` (each gets an independent policy instance), driven by the
    /// cycle-exact engine.
    ///
    /// # Panics
    ///
    /// Panics if `mc_count` is zero or does not divide the channel count.
    pub fn new(total: DramConfig, mc_count: usize, policy: PolicyKind) -> Self {
        assert!(mc_count > 0, "at least one controller required");
        assert_eq!(
            total.channels % mc_count,
            0,
            "channel count {} must divide evenly across {} MCs",
            total.channels,
            mc_count
        );
        let per_mc = total.with_channels(total.channels / mc_count);
        let mcs = (0..mc_count)
            .map(|_| MemoryController::new(per_mc.clone(), policy.instantiate()))
            .collect();
        Self {
            total,
            per_mc,
            mcs,
            engine: EngineKind::Cycle,
            generators: Vec::new(),
        }
    }

    /// Selects which [`MemoryEngine`] drives every controller.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The engine kind the run will use.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Number of controllers.
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// Adds a traffic source (bound to the *total* geometry, so its demand
    /// accounting sees the full system).
    pub fn add_generator<T: TrafficSource + 'static>(&mut self, mut generator: T) {
        generator.bind(&self.total);
        self.generators.push(Box::new(generator));
    }

    /// Attaches an epoch recorder to every controller; their reports are
    /// merged by epoch index into [`SimOutcome::telemetry`].
    pub fn record_epochs(&mut self, epoch_cycles: u64) {
        for mc in &mut self.mcs {
            mc.set_recorder(Box::new(EpochRecorder::new(epoch_cycles)));
        }
    }

    /// Attaches the protocol conformance sanitizer to every controller;
    /// the per-MC reports are merged into [`SimOutcome::conformance`].
    pub fn enable_conformance(&mut self) {
        let timing = self.per_mc.timing;
        for mc in &mut self.mcs {
            mc.enable_conformance(timing);
        }
    }

    /// Routes a global address: which MC, and the translated address whose
    /// *local* decode lands on the right local channel with unchanged
    /// bank/row/column coordinates. Lines interleave across MCs first, so
    /// adjacent lines hit different controllers.
    pub fn route(&self, addr: u64) -> (usize, u64) {
        route_addr(addr, &self.total, self.mcs.len())
    }

    /// Runs the system for `horizon` cycles and returns a merged outcome.
    pub fn run(self, horizon: u64) -> SimOutcome {
        let MultiMcSystem {
            total,
            mcs,
            engine,
            mut generators,
            ..
        } = self;
        let mc_count = mcs.len();
        let mut engines: Vec<Box<dyn MemoryEngine>> =
            mcs.into_iter().map(|mc| engine.wrap(mc)).collect();
        let mut buf: Vec<Completion> = Vec::new();
        let mut now = 0u64;
        while now < horizon {
            for generator in &mut generators {
                while let Some(req) = generator.poll(now) {
                    let (mc, local_addr) = route_addr(req.addr, &total, mc_count);
                    let local = MemoryRequest {
                        addr: local_addr,
                        ..req
                    };
                    if engines[mc].enqueue(local).is_err() {
                        // Hand the *original* request back for retry.
                        generator.on_reject(req);
                        break;
                    }
                }
            }
            for eng in &mut engines {
                eng.advance_to(now);
                buf.clear();
                eng.drain_completions(&mut buf);
                for completion in &buf {
                    for generator in &mut generators {
                        if generator.source_id() == completion.source {
                            generator.on_complete(completion);
                            break;
                        }
                    }
                }
            }
            // Skip ahead to the earliest cycle any controller or generator
            // needs; the cycle engine answers `now + 1`, reproducing the
            // legacy per-cycle loop exactly.
            let mut next = horizon;
            for eng in &engines {
                next = next.min(eng.next_event(now + 1));
            }
            for g in &generators {
                if let Some(emit) = g.next_emit_at(now + 1) {
                    next = next.min(emit.max(now + 1));
                }
            }
            let next = next.max(now + 1);
            if next > now + 1 {
                for g in &mut generators {
                    g.fast_forward(now + 1, next);
                }
            }
            now = next;
        }
        for eng in &mut engines {
            eng.finish(horizon);
        }

        // Merge statistics (and telemetry reports) across controllers.
        let mut stats = MemoryStats::new();
        stats.elapsed_cycles = horizon;
        let mut telemetry: Option<TelemetryReport> = None;
        let mut conformance: Option<ConformanceReport> = None;
        for mut eng in engines {
            if let Some(report) = eng.take_report(horizon) {
                match &mut telemetry {
                    Some(merged) => merged.merge(&report),
                    None => telemetry = Some(report),
                }
            }
            if let Some(report) = eng.conformance_report() {
                match &mut conformance {
                    Some(merged) => merged.merge(&report),
                    None => conformance = Some(report),
                }
            }
            let s = eng.take_stats();
            for (src, per) in s.per_source {
                let agg = stats.source_mut(src);
                agg.served += per.served;
                agg.bytes += per.bytes;
                agg.row_hits += per.row_hits;
                agg.row_misses += per.row_misses;
                agg.row_conflicts += per.row_conflicts;
                agg.total_latency += per.total_latency;
                agg.max_latency = agg.max_latency.max(per.max_latency);
                agg.enqueued += per.enqueued;
                agg.rejected += per.rejected;
                agg.latency.merge(&per.latency);
            }
            stats.scheduler.issued += s.scheduler.issued;
            stats.scheduler.bus_blocked += s.scheduler.bus_blocked;
            stats.scheduler.no_candidate += s.scheduler.no_candidate;
            stats.scheduler.idle += s.scheduler.idle;
            // A high-watermark merges by max: the deepest single channel
            // queue anywhere in the system, not a sum across controllers.
            stats.scheduler.queue_hwm = stats.scheduler.queue_hwm.max(s.scheduler.queue_hwm);
        }
        stats.publish_metrics();

        let completed: BTreeMap<SourceId, u64> = generators
            .iter()
            .map(|g| (g.source_id(), g.completed()))
            .collect();
        let progress: BTreeMap<SourceId, u64> = generators
            .iter()
            .map(|g| (g.source_id(), g.progress()))
            .collect();
        let measured = MeasureWindow {
            cycles: horizon,
            progress: progress.clone(),
            bytes: stats
                .per_source
                .iter()
                .map(|(s, st)| (*s, st.bytes))
                .collect(),
        };
        SimOutcome {
            stats,
            config: total,
            horizon,
            completed,
            progress,
            measured,
            telemetry,
            conformance,
        }
    }

    /// The per-controller geometry (for inspection/tests).
    pub fn per_mc_config(&self) -> &DramConfig {
        &self.per_mc
    }
}

fn route_addr(addr: u64, total: &DramConfig, mc_count: usize) -> (usize, u64) {
    let line_bytes = u64::from(total.line_bytes);
    let offset = addr % line_bytes;
    let line = addr / line_bytes;
    let c_total = total.channels as u64;
    let mc_count = mc_count as u64;
    let per_mc_channels = c_total / mc_count;

    let global_channel = line % c_total;
    let blk = line / c_total;
    let mc = (global_channel % mc_count) as usize;
    let local_channel = global_channel / mc_count;
    let local_line = blk * per_mc_channels + local_channel;
    (mc, local_line * line_bytes + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::StreamTraffic;

    fn stream(s: usize, gbps: f64) -> StreamTraffic {
        StreamTraffic::builder(SourceId(s))
            .demand_gbps(gbps)
            .row_locality(0.95)
            .window(64)
            .seed(31 + s as u64)
            .build()
    }

    #[test]
    fn routing_covers_all_mcs_and_local_channels() {
        let sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::FrFcfs);
        let mut seen_mc = [false; 2];
        for i in 0..64u64 {
            let (mc, local) = sys.route(i * 64);
            seen_mc[mc] = true;
            // Local decode must stay inside the per-MC geometry.
            let d = crate::mapping::AddressMapping::default().decode(local, sys.per_mc_config());
            assert!(d.channel < sys.per_mc_config().channels);
        }
        assert!(seen_mc.iter().all(|&b| b));
    }

    #[test]
    fn adjacent_lines_alternate_controllers() {
        let sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::FrFcfs);
        let (mc0, _) = sys.route(0);
        let (mc1, _) = sys.route(64);
        assert_ne!(mc0, mc1);
    }

    #[test]
    fn routing_preserves_line_offsets() {
        let sys = MultiMcSystem::new(DramConfig::xavier(), 4, PolicyKind::FrFcfs);
        let (_, base) = sys.route(12 * 64);
        let (_, offset) = sys.route(12 * 64 + 17);
        assert_eq!(offset - base, 17);
    }

    #[test]
    fn multi_mc_matches_single_mc_throughput_roughly() {
        let run_multi = |mcs: usize| {
            let mut sys = MultiMcSystem::new(DramConfig::xavier(), mcs, PolicyKind::Atlas);
            for s in 0..4 {
                sys.add_generator(stream(s, 25.0));
            }
            let out = sys.run(30_000);
            (0..4).map(|s| out.source_bw_gbps(SourceId(s))).sum::<f64>()
        };
        let one = run_multi(1);
        let four = run_multi(4);
        assert!(
            (one - four).abs() / one < 0.25,
            "1 MC: {one:.1} GB/s vs 4 MCs: {four:.1} GB/s"
        );
    }

    #[test]
    fn merged_stats_account_all_requests() {
        let mut sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::FrFcfs);
        sys.add_generator(stream(0, 40.0));
        let out = sys.run(20_000);
        let s = &out.stats.per_source[&SourceId(0)];
        assert!(s.served > 0);
        assert_eq!(
            s.served,
            s.row_hits + s.row_misses + s.row_conflicts,
            "outcome counts partition served requests"
        );
        assert_eq!(out.completed[&SourceId(0)], out.progress[&SourceId(0)]);
    }

    #[test]
    fn per_mc_reports_merge_and_reconcile() {
        let mut sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::FrFcfs);
        sys.add_generator(stream(0, 40.0));
        sys.add_generator(stream(1, 20.0));
        sys.record_epochs(2_000);
        let out = sys.run(20_000);
        let report = out.telemetry.as_ref().expect("recorders attached");
        assert_eq!(report.total_bytes(), out.stats.total_bytes());
        let sources = report.sources();
        assert!(sources.contains(&0) && sources.contains(&1));
        // Each epoch index appears once after merging.
        let mut epochs: Vec<u64> = report.epochs.iter().map(|e| e.epoch).collect();
        let before = epochs.len();
        epochs.dedup();
        assert_eq!(epochs.len(), before);
    }

    #[test]
    fn event_engine_matches_cycle_engine_across_mcs() {
        let run = |engine: EngineKind| {
            let mut sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::Tcm);
            sys.set_engine(engine);
            for s in 0..3 {
                sys.add_generator(stream(s, 12.0 + 6.0 * s as f64));
            }
            sys.run(40_000)
        };
        let cycle = run(EngineKind::Cycle);
        let event = run(EngineKind::Event);
        assert_eq!(cycle.stats, event.stats, "merged MemoryStats diverged");
        assert_eq!(cycle.completed, event.completed);
        assert_eq!(cycle.progress, event.progress);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_uneven_channel_split() {
        MultiMcSystem::new(DramConfig::xavier(), 3, PolicyKind::Fcfs);
    }
}
