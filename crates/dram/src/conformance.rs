//! DDR protocol conformance sanitizer.
//!
//! The controller model collapses the PRE/ACT/CAS sequence of one request
//! into a single service window, which makes it fast — and makes it easy
//! for a scheduling change to silently emit a command stream no real DDR4
//! or LPDDR4X part would accept. Since the paper's three-region slowdown
//! curves emerge from the memory controller's row-hit prioritization and
//! fairness mechanisms (§2.3), a timing-illegal stream over- or
//! under-states interference and corrupts every downstream number.
//!
//! [`ConformanceChecker`] is an observer attached to the controller (see
//! [`crate::controller::MemoryController::enable_conformance`]). The
//! controller reports every implied command — PRECHARGE, ACTIVATE, RD, WR
//! and all-bank REFRESH — as a [`CommandRecord`]; the checker replays the
//! stream in cycle order against *reference* timing constraints and
//! row-state rules, producing a structured [`ConformanceReport`].
//!
//! Checked invariants (per bank unless noted):
//!
//! * row-state legality: no ACT on an open row, no RD/WR to a closed or
//!   different row, REF only with every bank of the channel precharged;
//! * tRCD (ACT→CAS), tRP (PRE→ACT / PRE→REF), tRAS (ACT→PRE),
//!   tWR (end of write data→PRE), tCCD (CAS→CAS), tWTR (end of write
//!   data→RD);
//! * tRRD_S / tRRD_L (ACT→ACT across / within bank groups, per channel)
//!   and tFAW (at most four ACTs in any sliding window, per channel);
//! * tRFC (no command inside a refresh window) and the refresh cadence
//!   (consecutive REFs no further apart than two tREFI).
//!
//! Out of scope, documented deviations of the bank-state model: data-bus
//! transfer overlap across banks (bus occupancy is modelled as issue-rate
//! pacing, uniform across sources), cross-bank tCCD (the bus pacing gap
//! equals tCCD_S on both presets), and tRTP (read-to-precharge, subsumed
//! by the modelled bank occupancy window).
//!
//! The checker buffers records and replays them at [`ConformanceChecker::finish`]
//! because the controller reports commands at *issue* time with their
//! (possibly future) command-bus timestamps; sorting once at the end is
//! cheaper and simpler than a reorder buffer. Memory cost is one small
//! record per DRAM command, which is why the observer is opt-in.

use crate::config::DramConfig;
use crate::timing::DramTiming;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on the number of violations kept verbatim in the report; the
/// counters keep counting past it.
const MAX_STORED_VIOLATIONS: usize = 256;

/// One DRAM command of the reconstructed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmdKind {
    /// Close the bank's open row.
    Pre,
    /// Open a row.
    Act,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// All-bank refresh (channel scope; the `bank` field is meaningless).
    RefAb,
}

impl CmdKind {
    /// Short mnemonic, as printed in reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmdKind::Pre => "PRE",
            CmdKind::Act => "ACT",
            CmdKind::Rd => "RD",
            CmdKind::Wr => "WR",
            CmdKind::RefAb => "REFab",
        }
    }
}

/// One observed command with its command-bus timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Command-clock cycle the command occupies the command bus.
    pub cycle: u64,
    /// Channel the command was issued on.
    pub channel: usize,
    /// Bank within the channel (ignored for [`CmdKind::RefAb`]).
    pub bank: usize,
    /// The command.
    pub kind: CmdKind,
    /// Target row for ACT/RD/WR.
    pub row: Option<u64>,
}

/// The class of a detected protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ViolationKind {
    /// ACT issued while the bank already had an open row.
    ActOnOpenRow,
    /// RD/WR issued to a precharged bank.
    CasClosedRow,
    /// RD/WR issued to a different row than the open one.
    CasWrongRow,
    /// ACT→CAS spacing under tRCD.
    TRcd,
    /// PRE→ACT or PRE→REF spacing under tRP.
    TRp,
    /// ACT→PRE spacing under tRAS.
    TRas,
    /// End of write data→PRE spacing under tWR.
    TWr,
    /// Same-bank CAS→CAS spacing under tCCD.
    TCcd,
    /// End of write data→RD spacing under tWTR.
    TWtr,
    /// Cross-group ACT→ACT spacing under tRRD_S.
    TRrdS,
    /// Same-group ACT→ACT spacing under tRRD_L.
    TRrdL,
    /// More than four ACTs inside one tFAW window.
    TFaw,
    /// A command landed inside a refresh window (tRFC).
    CmdDuringRefresh,
    /// REF issued while a bank of the channel still had an open row.
    RefreshNotPrecharged,
    /// Consecutive refreshes further apart than two tREFI.
    RefreshLate,
}

impl ViolationKind {
    /// Stable machine-readable identifier.
    pub fn id(self) -> &'static str {
        match self {
            ViolationKind::ActOnOpenRow => "act-on-open-row",
            ViolationKind::CasClosedRow => "cas-closed-row",
            ViolationKind::CasWrongRow => "cas-wrong-row",
            ViolationKind::TRcd => "trcd",
            ViolationKind::TRp => "trp",
            ViolationKind::TRas => "tras",
            ViolationKind::TWr => "twr",
            ViolationKind::TCcd => "tccd",
            ViolationKind::TWtr => "twtr",
            ViolationKind::TRrdS => "trrd-s",
            ViolationKind::TRrdL => "trrd-l",
            ViolationKind::TFaw => "tfaw",
            ViolationKind::CmdDuringRefresh => "cmd-during-refresh",
            ViolationKind::RefreshNotPrecharged => "refresh-not-precharged",
            ViolationKind::RefreshLate => "refresh-late",
        }
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// What was violated.
    pub kind: ViolationKind,
    /// Cycle of the offending command.
    pub cycle: u64,
    /// Channel of the offending command.
    pub channel: usize,
    /// Bank of the offending command.
    pub bank: usize,
    /// The offending command.
    pub cmd: CmdKind,
    /// Minimum legal spacing in cycles (0 for state-legality violations).
    pub required: u64,
    /// Observed spacing in cycles (0 for state-legality violations).
    pub actual: u64,
}

impl Violation {
    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "cycle {:>8}  ch{} bank{:<2} {:<5} {}: required >= {}, got {}",
            self.cycle,
            self.channel,
            self.bank,
            self.cmd.mnemonic(),
            self.kind.id(),
            self.required,
            self.actual
        )
    }
}

/// The outcome of a conformance run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// Commands replayed.
    pub commands: u64,
    /// Total violations detected (may exceed `violations.len()`).
    pub total_violations: u64,
    /// First violations, capped to keep reports bounded.
    pub violations: Vec<Violation>,
    /// Violation count per kind id.
    pub per_kind: BTreeMap<String, u64>,
}

impl ConformanceReport {
    /// Whether the stream was fully JEDEC-legal.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Folds another report into this one (multi-controller systems merge
    /// the per-MC reports into a single outcome).
    pub fn merge(&mut self, other: &ConformanceReport) {
        self.commands += other.commands;
        self.total_violations += other.total_violations;
        for v in &other.violations {
            if self.violations.len() >= MAX_STORED_VIOLATIONS {
                break;
            }
            self.violations.push(v.clone());
        }
        for (kind, n) in &other.per_kind {
            *self.per_kind.entry(kind.clone()).or_insert(0) += n;
        }
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "conformance: {} commands checked, {} violation(s)\n",
            self.commands, self.total_violations
        );
        for (kind, n) in &self.per_kind {
            out.push_str(&format!("  {kind}: {n}\n"));
        }
        for v in &self.violations {
            out.push_str("  ");
            out.push_str(&v.render());
            out.push('\n');
        }
        if self.total_violations > self.violations.len() as u64 {
            out.push_str(&format!(
                "  ... {} more\n",
                self.total_violations - self.violations.len() as u64
            ));
        }
        out
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    open_row: Option<u64>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_cas: Option<u64>,
    /// End cycle of the last write burst (for tWR / tWTR).
    write_data_end: Option<u64>,
}

#[derive(Debug, Clone, Default)]
struct ChannelTrack {
    /// Recent ACT timestamps with their bank group, pruned to the tFAW
    /// horizon (at most a handful of entries).
    acts: Vec<(u64, usize)>,
    /// Start of the current/most recent refresh window.
    last_ref: Option<u64>,
}

/// The protocol conformance observer.
///
/// Construct with [`ConformanceChecker::new`] to validate a controller
/// against its own timing (guards the scheduling logic), or with
/// [`ConformanceChecker::with_reference`] to validate against an explicit
/// reference timing (catches mis-configured or corrupted timing sets).
#[derive(Debug, Clone)]
pub struct ConformanceChecker {
    timing: DramTiming,
    config: DramConfig,
    records: Vec<CommandRecord>,
}

impl ConformanceChecker {
    /// A checker validating against `config`'s own timing parameters.
    pub fn new(config: &DramConfig) -> Self {
        Self::with_reference(config, config.timing)
    }

    /// A checker validating the emitted stream against an explicit
    /// `reference` timing — e.g. the JEDEC speed-bin values, independent of
    /// whatever (possibly broken) timing the controller schedules with.
    pub fn with_reference(config: &DramConfig, reference: DramTiming) -> Self {
        Self {
            timing: reference,
            config: config.clone(),
            records: Vec::new(),
        }
    }

    /// Records one command. Timestamps may arrive out of order; the stream
    /// is sorted at [`ConformanceChecker::finish`].
    pub fn observe(&mut self, record: CommandRecord) {
        self.records.push(record);
    }

    /// Replays the recorded stream in cycle order and returns the report.
    pub fn finish(&self) -> ConformanceReport {
        let mut records = self.records.clone();
        records.sort_by_key(|r| r.cycle);

        let t = &self.timing;
        let burst = self.config.burst_cycles();
        let mut banks: Vec<Vec<BankTrack>> = (0..self.config.channels)
            .map(|_| vec![BankTrack::default(); self.config.banks_per_channel])
            .collect();
        let mut channels: Vec<ChannelTrack> = vec![ChannelTrack::default(); self.config.channels];

        let mut report = ConformanceReport {
            commands: 0,
            total_violations: 0,
            violations: Vec::new(),
            per_kind: BTreeMap::new(),
        };
        let flag = |report: &mut ConformanceReport, v: Violation| {
            report.total_violations += 1;
            *report.per_kind.entry(v.kind.id().to_owned()).or_insert(0) += 1;
            if report.violations.len() < MAX_STORED_VIOLATIONS {
                report.violations.push(v);
            }
        };
        // Minimum spacing check: `prev + need <= now`, flagged as `kind`.
        let spacing = |now: u64, prev: u64, need: u64| -> Option<(u64, u64)> {
            let got = now.saturating_sub(prev);
            (got < need).then_some((need, got))
        };

        for r in &records {
            report.commands += 1;
            let ch = &mut channels[r.channel];
            let violation = |kind: ViolationKind, required: u64, actual: u64| Violation {
                kind,
                cycle: r.cycle,
                channel: r.channel,
                bank: r.bank,
                cmd: r.kind,
                required,
                actual,
            };

            // No command may land inside a refresh window (tRFC), except
            // the refresh itself.
            if r.kind != CmdKind::RefAb {
                if let Some(start) = ch.last_ref {
                    if r.cycle >= start && r.cycle < start + t.t_rfc {
                        flag(
                            &mut report,
                            violation(ViolationKind::CmdDuringRefresh, t.t_rfc, r.cycle - start),
                        );
                    }
                }
            }

            match r.kind {
                CmdKind::Pre => {
                    let b = &mut banks[r.channel][r.bank];
                    if let (Some(act), true) = (b.last_act, b.open_row.is_some()) {
                        if let Some((need, got)) = spacing(r.cycle, act, t.t_ras) {
                            flag(&mut report, violation(ViolationKind::TRas, need, got));
                        }
                    }
                    if let Some(end) = b.write_data_end {
                        if let Some((need, got)) = spacing(r.cycle, end, t.t_wr) {
                            flag(&mut report, violation(ViolationKind::TWr, need, got));
                        }
                    }
                    b.open_row = None;
                    b.last_pre = Some(r.cycle);
                }
                CmdKind::Act => {
                    let group = self.config.bank_group(r.bank);
                    {
                        let b = &banks[r.channel][r.bank];
                        if b.open_row.is_some() {
                            flag(&mut report, violation(ViolationKind::ActOnOpenRow, 0, 0));
                        }
                        if let Some(pre) = b.last_pre {
                            if let Some((need, got)) = spacing(r.cycle, pre, t.t_rp) {
                                flag(&mut report, violation(ViolationKind::TRp, need, got));
                            }
                        }
                    }
                    // ACT pacing within the channel: tRRD_S/L by group …
                    for &(a, g) in &ch.acts {
                        let gap = r.cycle.abs_diff(a);
                        let (need, kind) = if g == group {
                            (t.t_rrd_l, ViolationKind::TRrdL)
                        } else {
                            (t.t_rrd_s, ViolationKind::TRrdS)
                        };
                        if need > 0 && gap < need {
                            flag(&mut report, violation(kind, need, gap));
                        }
                    }
                    // … and the four-activate window.
                    if t.t_faw > 0 {
                        let mut acts: Vec<u64> = ch.acts.iter().map(|&(a, _)| a).collect();
                        acts.push(r.cycle);
                        acts.sort_unstable();
                        for w in acts.windows(5) {
                            if w[4] - w[0] < t.t_faw {
                                flag(
                                    &mut report,
                                    violation(ViolationKind::TFaw, t.t_faw, w[4] - w[0]),
                                );
                                break;
                            }
                        }
                    }
                    ch.acts.push((r.cycle, group));
                    ch.acts
                        .retain(|&(a, _)| a + t.t_faw.max(t.t_rrd_l) > r.cycle);
                    let b = &mut banks[r.channel][r.bank];
                    b.open_row = r.row;
                    b.last_act = Some(r.cycle);
                }
                CmdKind::Rd | CmdKind::Wr => {
                    let b = &mut banks[r.channel][r.bank];
                    match (b.open_row, r.row) {
                        (None, _) => {
                            flag(&mut report, violation(ViolationKind::CasClosedRow, 0, 0));
                        }
                        (Some(open), Some(row)) if open != row => {
                            flag(&mut report, violation(ViolationKind::CasWrongRow, 0, 0));
                        }
                        _ => {}
                    }
                    if let Some(act) = b.last_act {
                        if let Some((need, got)) = spacing(r.cycle, act, t.t_rcd) {
                            flag(&mut report, violation(ViolationKind::TRcd, need, got));
                        }
                    }
                    if let Some(cas) = b.last_cas {
                        if let Some((need, got)) = spacing(r.cycle, cas, t.t_ccd) {
                            flag(&mut report, violation(ViolationKind::TCcd, need, got));
                        }
                    }
                    if r.kind == CmdKind::Rd {
                        if let Some(end) = b.write_data_end {
                            if let Some((need, got)) = spacing(r.cycle, end, t.t_wtr) {
                                flag(&mut report, violation(ViolationKind::TWtr, need, got));
                            }
                        }
                    } else {
                        // Write data occupies the bus from CAS + CL (the
                        // model approximates CWL with CL) for one burst.
                        b.write_data_end = Some(r.cycle + t.t_cl + burst);
                    }
                    b.last_cas = Some(r.cycle);
                }
                CmdKind::RefAb => {
                    for (bank_idx, b) in banks[r.channel].iter().enumerate() {
                        if b.open_row.is_some() {
                            let mut v = violation(ViolationKind::RefreshNotPrecharged, 0, 0);
                            v.bank = bank_idx;
                            flag(&mut report, v);
                        }
                        if let Some(pre) = b.last_pre {
                            if let Some((need, got)) = spacing(r.cycle, pre, t.t_rp) {
                                let mut v = violation(ViolationKind::TRp, need, got);
                                v.bank = bank_idx;
                                flag(&mut report, v);
                            }
                        }
                    }
                    if t.t_refi > 0 {
                        if let Some(prev) = ch.last_ref {
                            let gap = r.cycle - prev;
                            if gap > 2 * t.t_refi {
                                flag(
                                    &mut report,
                                    violation(ViolationKind::RefreshLate, 2 * t.t_refi, gap),
                                );
                            }
                        }
                    }
                    ch.last_ref = Some(r.cycle);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> ConformanceChecker {
        ConformanceChecker::new(&DramConfig::cmp_study())
    }

    fn cmd(cycle: u64, bank: usize, kind: CmdKind, row: Option<u64>) -> CommandRecord {
        CommandRecord {
            cycle,
            channel: 0,
            bank,
            kind,
            row,
        }
    }

    #[test]
    fn legal_open_access_is_clean() {
        let mut c = checker();
        let t = DramTiming::ddr4_3200();
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        c.observe(cmd(t.t_rcd, 0, CmdKind::Rd, Some(7)));
        c.observe(cmd(t.t_rcd + t.t_ccd, 0, CmdKind::Rd, Some(7)));
        let report = c.finish();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.commands, 3);
    }

    #[test]
    fn trcd_violation_is_flagged() {
        let mut c = checker();
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        c.observe(cmd(5, 0, CmdKind::Rd, Some(7)));
        let report = c.finish();
        assert_eq!(report.total_violations, 1);
        assert_eq!(report.violations[0].kind, ViolationKind::TRcd);
        assert_eq!(report.per_kind["trcd"], 1);
    }

    #[test]
    fn act_on_open_row_is_flagged() {
        let mut c = checker();
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        c.observe(cmd(100, 0, CmdKind::Act, Some(9)));
        let report = c.finish();
        assert_eq!(report.violations[0].kind, ViolationKind::ActOnOpenRow);
    }

    #[test]
    fn cas_to_wrong_or_closed_row_is_flagged() {
        let mut c = checker();
        c.observe(cmd(0, 0, CmdKind::Rd, Some(1)));
        c.observe(cmd(50, 1, CmdKind::Act, Some(2)));
        c.observe(cmd(100, 1, CmdKind::Rd, Some(3)));
        let report = c.finish();
        assert_eq!(report.per_kind["cas-closed-row"], 1);
        assert_eq!(report.per_kind["cas-wrong-row"], 1);
    }

    #[test]
    fn tras_violation_on_early_precharge() {
        let mut c = checker();
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        c.observe(cmd(10, 0, CmdKind::Pre, None));
        let report = c.finish();
        assert_eq!(report.violations[0].kind, ViolationKind::TRas);
    }

    #[test]
    fn rrd_and_faw_pace_activates() {
        let mut c = checker();
        let t = DramTiming::ddr4_3200();
        // Banks 0..4 land in distinct groups: cross-group spacing tRRD_S.
        c.observe(cmd(0, 0, CmdKind::Act, Some(1)));
        c.observe(cmd(1, 1, CmdKind::Act, Some(1))); // gap 1 < tRRD_S
        let report = c.finish();
        assert_eq!(report.violations[0].kind, ViolationKind::TRrdS);

        // Same group (bank 0 and 4 with 4 groups on 8 banks): tRRD_L.
        let mut c = checker();
        c.observe(cmd(0, 0, CmdKind::Act, Some(1)));
        c.observe(cmd(t.t_rrd_s + 1, 4, CmdKind::Act, Some(1)));
        let report = c.finish();
        assert_eq!(report.violations[0].kind, ViolationKind::TRrdL);

        // Five ACTs bunched inside one tFAW window.
        let mut c = checker();
        for i in 0..5u64 {
            c.observe(cmd(i * t.t_rrd_l, (i as usize) % 8, CmdKind::Act, Some(1)));
        }
        let report = c.finish();
        assert!(report.per_kind.contains_key("tfaw"), "{}", report.summary());
    }

    #[test]
    fn refresh_window_blocks_commands() {
        let mut c = checker();
        let t = DramTiming::ddr4_3200();
        c.observe(cmd(1000, 0, CmdKind::RefAb, None));
        c.observe(cmd(1000 + t.t_rfc / 2, 0, CmdKind::Act, Some(1)));
        let report = c.finish();
        assert_eq!(report.per_kind["cmd-during-refresh"], 1);
    }

    #[test]
    fn refresh_with_open_row_is_flagged() {
        let mut c = checker();
        c.observe(cmd(0, 3, CmdKind::Act, Some(1)));
        c.observe(cmd(500, 0, CmdKind::RefAb, None));
        let report = c.finish();
        assert_eq!(report.per_kind["refresh-not-precharged"], 1);
        assert_eq!(report.violations[0].bank, 3);
    }

    #[test]
    fn out_of_order_observation_is_sorted() {
        let mut c = checker();
        let t = DramTiming::ddr4_3200();
        c.observe(cmd(t.t_rcd, 0, CmdKind::Rd, Some(7)));
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        assert!(c.finish().is_clean());
    }

    #[test]
    fn report_caps_stored_violations_but_counts_all() {
        let mut c = checker();
        for i in 0..400u64 {
            // Interleave two rows on one bank without ACTs: every CAS is
            // wrong-row or closed-row.
            c.observe(cmd(i * 100, 0, CmdKind::Rd, Some(i)));
        }
        let report = c.finish();
        assert_eq!(report.total_violations, 400);
        assert_eq!(report.violations.len(), MAX_STORED_VIOLATIONS);
        assert!(report.summary().contains("more"));
    }

    #[test]
    fn reference_timing_catches_a_fast_controller() {
        // A controller scheduling with halved tRCD emits ACT→CAS gaps the
        // reference DDR4 bin forbids.
        let mut broken = DramConfig::cmp_study();
        broken.timing.t_rcd /= 2;
        let mut c = ConformanceChecker::with_reference(&broken, DramTiming::ddr4_3200());
        c.observe(cmd(0, 0, CmdKind::Act, Some(7)));
        c.observe(cmd(broken.timing.t_rcd, 0, CmdKind::Rd, Some(7)));
        let report = c.finish();
        assert_eq!(report.violations[0].kind, ViolationKind::TRcd);
    }
}
