//! Memory request and address types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies the agent (core, processing unit, traffic generator) that
/// issued a memory request.
///
/// Scheduling policies with fairness control (ATLAS, TCM, SMS) track
/// per-source state keyed by this id, mirroring the per-thread accounting of
/// the original proposals.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SourceId(pub usize);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Whether a request reads from or writes to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReqKind {
    /// A read (load / fill) request.
    #[default]
    Read,
    /// A write (store / write-back) request.
    Write,
}

/// A single cache-line-granularity memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Monotonically increasing id, unique within one simulation.
    pub id: u64,
    /// The agent that issued the request.
    pub source: SourceId,
    /// Physical byte address of the first byte of the line.
    pub addr: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Memory-controller cycle at which the request entered the queue.
    pub arrival: u64,
    /// Number of bytes transferred (one interconnect line, typically 64).
    pub bytes: u32,
}

impl MemoryRequest {
    /// Creates a read request for a 64-byte line.
    pub fn read(id: u64, source: SourceId, addr: u64, arrival: u64) -> Self {
        Self {
            id,
            source,
            addr,
            kind: ReqKind::Read,
            arrival,
            bytes: 64,
        }
    }

    /// Creates a write request for a 64-byte line.
    pub fn write(id: u64, source: SourceId, addr: u64, arrival: u64) -> Self {
        Self {
            id,
            source,
            addr,
            kind: ReqKind::Write,
            arrival,
            bytes: 64,
        }
    }
}

/// A physical address decomposed into DRAM coordinates by an
/// [`AddressMapping`](crate::mapping::AddressMapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line offset) within the row.
    pub column: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_constructor_sets_fields() {
        let r = MemoryRequest::read(7, SourceId(2), 0x1000, 99);
        assert_eq!(r.id, 7);
        assert_eq!(r.source, SourceId(2));
        assert_eq!(r.addr, 0x1000);
        assert_eq!(r.kind, ReqKind::Read);
        assert_eq!(r.arrival, 99);
        assert_eq!(r.bytes, 64);
    }

    #[test]
    fn write_constructor_sets_kind() {
        let r = MemoryRequest::write(1, SourceId(0), 0, 0);
        assert_eq!(r.kind, ReqKind::Write);
    }

    #[test]
    fn source_id_display() {
        assert_eq!(SourceId(3).to_string(), "src3");
    }

    #[test]
    fn source_id_orders_by_index() {
        assert!(SourceId(1) < SourceId(2));
    }
}
