//! Memory-controller scheduling policies (Table 2 of the paper).
//!
//! Five policies are implemented:
//!
//! | Policy | Fairness control | Reference |
//! |---|---|---|
//! | [`Fcfs`] | none | — |
//! | [`FrFcfs`] | none | Rixner et al., ISCA'00 |
//! | [`Atlas`] | least-attained-service ranking | Kim et al., HPCA'10 |
//! | [`Tcm`] | latency/bandwidth clustering + rank shuffle | Kim et al., MICRO'10 |
//! | [`Sms`] | batch formation + probabilistic shortest-first | Ausavarungnirun et al., ISCA'12 |
//!
//! Each policy selects, once per scheduling opportunity, one request among
//! the *issuable* candidates of a channel (requests whose bank is free).
//! Policies keep their own per-source state (attained service, intensity,
//! cluster membership) and are notified of enqueue/serve events by the
//! controller.

use crate::request::SourceId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One issuable request presented to a scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the request in the channel queue (returned by `choose`).
    pub queue_idx: usize,
    /// Source that issued the request.
    pub source: SourceId,
    /// Whether the request would hit in the currently open row.
    pub row_hit: bool,
    /// Cycle the request entered the queue.
    pub arrival: u64,
    /// Target bank within the channel.
    pub bank: usize,
    /// Target row.
    pub row: u64,
}

/// Everything a policy may inspect when choosing the next request.
#[derive(Debug)]
pub struct ScheduleInput<'a> {
    /// Current memory-controller cycle.
    pub cycle: u64,
    /// Issuable requests (banks free) in this channel.
    pub candidates: &'a [Candidate],
    /// Number of pending (queued, not yet served) requests per source across
    /// the whole controller; used by SMS's shortest-job-first stage.
    pub pending_per_source: &'a BTreeMap<SourceId, usize>,
}

/// A memory-request scheduling discipline.
///
/// This trait is sealed in spirit: the controller only exercises the
/// implementations in this module, but it is left open so experiments can
/// plug in custom disciplines (e.g. for ablations).
pub trait SchedulingPolicy: fmt::Debug + Send {
    /// Human-readable policy name (matches the paper's Table 2 labels).
    fn name(&self) -> &'static str;

    /// Picks the index (into `input.candidates`) of the request to issue,
    /// or `None` to idle this opportunity. An empty candidate list must
    /// return `None`.
    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize>;

    /// Notification: a request from `source` entered the queue.
    fn on_enqueue(&mut self, _source: SourceId) {}

    /// Notification: `bytes` of service were delivered to `source`.
    fn on_served(&mut self, _source: SourceId, _bytes: u64) {}

    /// Called once per controller cycle for epoch/quantum maintenance.
    fn on_cycle(&mut self, _cycle: u64) {}

    /// The next cycle at which [`SchedulingPolicy::on_cycle`] performs
    /// state maintenance (epoch, quantum, or shuffle boundaries), or
    /// `u64::MAX` if `on_cycle` is a no-op. The event-driven engine
    /// (see [`crate::engine`]) skips ahead over stall cycles but must
    /// still execute every maintenance cycle so that policy state — and
    /// therefore scheduling decisions — stay bit-identical to the
    /// cycle-exact reference. Policies whose `on_cycle` mutates state
    /// must override this; the default declares `on_cycle` stateless.
    fn next_wakeup(&self) -> u64 {
        u64::MAX
    }

    /// Whether the controller may shield an open row from closure while
    /// row-hit requests for it are still queued (open-page awareness).
    /// All realistic schedulers respect open rows; plain FCFS — by
    /// definition locality-oblivious — overrides this to `false`.
    fn respects_open_rows(&self) -> bool {
        true
    }
}

/// Enumerates the built-in policies; convenient for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-come-first-serve.
    Fcfs,
    /// First-ready FCFS (row-hit first).
    FrFcfs,
    /// Adaptive per-thread least-attained-service.
    Atlas,
    /// Thread cluster memory scheduling.
    Tcm,
    /// Staged memory scheduling.
    Sms,
}

impl PolicyKind {
    /// All five policies in the paper's order.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Fcfs,
            PolicyKind::FrFcfs,
            PolicyKind::Atlas,
            PolicyKind::Tcm,
            PolicyKind::Sms,
        ]
    }

    /// The three policies with fairness control.
    pub fn fairness_aware() -> [PolicyKind; 3] {
        [PolicyKind::Atlas, PolicyKind::Tcm, PolicyKind::Sms]
    }

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::FrFcfs => "FR-FCFS",
            PolicyKind::Atlas => "ATLAS",
            PolicyKind::Tcm => "TCM",
            PolicyKind::Sms => "SMS",
        }
    }

    /// Whether the policy employs fairness control.
    pub fn has_fairness_control(&self) -> bool {
        matches!(self, PolicyKind::Atlas | PolicyKind::Tcm | PolicyKind::Sms)
    }

    /// Builds a fresh policy instance with its default parameters.
    pub fn instantiate(&self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::FrFcfs => Box::new(FrFcfs::new()),
            PolicyKind::Atlas => Box::new(Atlas::default()),
            PolicyKind::Tcm => Box::new(Tcm::default()),
            PolicyKind::Sms => Box::new(Sms::default()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn oldest(cands: &[Candidate]) -> Option<usize> {
    cands
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| (c.arrival, c.queue_idx))
        .map(|(i, _)| i)
}

fn oldest_where<F: Fn(&Candidate) -> bool>(cands: &[Candidate], pred: F) -> Option<usize> {
    cands
        .iter()
        .enumerate()
        .filter(|(_, c)| pred(c))
        .min_by_key(|(_, c)| (c.arrival, c.queue_idx))
        .map(|(i, _)| i)
}

/// First-come-first-serve: requests are served strictly in arrival order
/// with no locality awareness.
///
/// As the paper observes (Fig. 5a, Table 3), FCFS suffers low row-buffer hit
/// rates under co-location because interleaved sources destroy row locality.
#[derive(Debug, Clone, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs
    }
}

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize> {
        oldest(input.candidates)
    }

    fn respects_open_rows(&self) -> bool {
        false
    }
}

/// First-ready FCFS: row-hit requests first, then oldest (Rixner et al.).
///
/// Maximizes row-buffer hit rate and total bandwidth but has no fairness
/// control; memory-intensive streams can hog bandwidth (Fig. 5b).
#[derive(Debug, Clone, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        FrFcfs
    }
}

impl SchedulingPolicy for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize> {
        oldest_where(input.candidates, |c| c.row_hit).or_else(|| oldest(input.candidates))
    }
}

/// ATLAS: Adaptive per-Thread Least-Attained-Service (Kim et al., HPCA'10).
///
/// Prioritization order (Table 2): (1) requests waiting beyond the
/// starvation threshold, (2) requests from the source with least attained
/// service, (3) row-hit requests, (4) oldest requests. Attained service is
/// accumulated per quantum and aged with an exponential moving average.
#[derive(Debug, Clone)]
pub struct Atlas {
    /// Starvation threshold in cycles; older requests jump the ranking.
    pub threshold_cycles: u64,
    /// Quantum length in cycles between long-term service aging.
    pub quantum_cycles: u64,
    /// Epoch length in cycles between rank recomputations. Ranks are held
    /// *fixed* within an epoch — the original proposal's rank stability —
    /// which lets the prioritized source stream row hits instead of the
    /// scheduler round-robining every request (and destroying locality).
    pub epoch_cycles: u64,
    /// EMA weight on history at quantum boundaries (ATLAS's alpha).
    pub alpha: f64,
    service_current: BTreeMap<SourceId, f64>,
    service_total: BTreeMap<SourceId, f64>,
    rank: BTreeMap<SourceId, usize>,
    next_quantum: u64,
    next_epoch: u64,
}

impl Atlas {
    /// Creates ATLAS with explicit parameters.
    pub fn new(threshold_cycles: u64, quantum_cycles: u64, epoch_cycles: u64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(epoch_cycles > 0, "epoch must be positive");
        Self {
            threshold_cycles,
            quantum_cycles,
            epoch_cycles,
            alpha,
            service_current: BTreeMap::new(),
            service_total: BTreeMap::new(),
            rank: BTreeMap::new(),
            next_quantum: quantum_cycles,
            next_epoch: 0,
        }
    }

    /// Long-term attained service of a source (for tests/inspection).
    pub fn attained_service(&self, source: SourceId) -> f64 {
        self.service_total.get(&source).copied().unwrap_or(0.0)
            + self.service_current.get(&source).copied().unwrap_or(0.0)
    }

    /// Rank of a source at the current epoch (0 = highest priority);
    /// unknown sources get top priority, as in the original (new threads
    /// have attained no service yet).
    fn rank_of(&self, source: SourceId) -> usize {
        self.rank.get(&source).copied().unwrap_or(0)
    }

    fn recompute_ranks(&mut self) {
        let mut by_service: Vec<(SourceId, f64)> = self
            .service_current
            .keys()
            .chain(self.service_total.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|s| (s, self.attained_service(s)))
            .collect();
        by_service.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        self.rank = by_service
            .into_iter()
            .enumerate()
            .map(|(r, (s, _))| (s, r))
            .collect();
    }
}

impl Default for Atlas {
    fn default() -> Self {
        // Quanta/epochs are scaled to the short horizons of the study (the
        // original proposal uses ~10M-cycle quanta on full applications).
        // The starvation threshold is the rule that keeps least-attained-
        // service prioritization from starving a heavier victim outright;
        // at queue latencies of a few hundred cycles, ~2.5k cycles bounds
        // any request's wait without degrading to FCFS.
        Self::new(2_500, 10_000, 1_500, 0.875)
    }
}

impl SchedulingPolicy for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize> {
        let cands = input.candidates;
        if cands.is_empty() {
            return None;
        }
        // (1) Over-threshold requests, oldest first.
        if let Some(i) = oldest_where(cands, |c| {
            input.cycle.saturating_sub(c.arrival) > self.threshold_cycles
        }) {
            return Some(i);
        }
        // (2) Best-ranked (least-attained-service) source among candidates;
        // ranks are fixed within the epoch.
        let best_rank = cands.iter().map(|c| self.rank_of(c.source)).min()?;
        let pool: Vec<Candidate> = cands
            .iter()
            .copied()
            .filter(|c| self.rank_of(c.source) == best_rank)
            .collect();
        // (3) Row-hit first, (4) oldest, within that source class.
        let pick = oldest_where(&pool, |c| c.row_hit).or_else(|| oldest(&pool))?;
        let chosen = pool[pick];
        cands.iter().position(|c| c.queue_idx == chosen.queue_idx)
    }

    fn on_enqueue(&mut self, source: SourceId) {
        self.service_current.entry(source).or_insert(0.0);
    }

    fn on_served(&mut self, source: SourceId, bytes: u64) {
        *self.service_current.entry(source).or_insert(0.0) += bytes as f64;
    }

    fn on_cycle(&mut self, cycle: u64) {
        if cycle >= self.next_epoch {
            self.recompute_ranks();
            self.next_epoch = cycle + self.epoch_cycles;
        }
        if cycle >= self.next_quantum {
            for (src, cur) in self.service_current.iter_mut() {
                let total = self.service_total.entry(*src).or_insert(0.0);
                *total = self.alpha * *total + (1.0 - self.alpha) * *cur;
                *cur = 0.0;
            }
            self.next_quantum = cycle + self.quantum_cycles;
        }
    }

    fn next_wakeup(&self) -> u64 {
        self.next_epoch.min(self.next_quantum)
    }
}

/// TCM: Thread Cluster Memory scheduling (Kim et al., MICRO'10).
///
/// Each quantum, sources are split by memory intensity into a
/// latency-sensitive cluster (prioritized) and a bandwidth-sensitive cluster
/// whose internal ranking is shuffled periodically to spread slowdown
/// fairly. Prioritization (Table 2): (1) non-memory-intensive sources,
/// (2) shuffled rank among intensive sources, (3) row hit, (4) oldest.
#[derive(Debug)]
pub struct Tcm {
    /// Quantum length in cycles between cluster re-formation.
    pub quantum_cycles: u64,
    /// Rank-shuffle period in cycles.
    pub shuffle_cycles: u64,
    /// Fraction of total attained bandwidth allowed into the
    /// latency-sensitive cluster (the original ClusterThresh, default 4/24).
    pub cluster_thresh: f64,
    served_current: BTreeMap<SourceId, u64>,
    latency_cluster: Vec<SourceId>,
    bw_rank: Vec<SourceId>,
    next_quantum: u64,
    next_shuffle: u64,
    rng: SmallRng,
}

impl Tcm {
    /// Creates TCM with explicit parameters; `seed` fixes the shuffle order
    /// for reproducibility.
    pub fn new(quantum_cycles: u64, shuffle_cycles: u64, cluster_thresh: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cluster_thresh),
            "cluster threshold must be a fraction"
        );
        Self {
            quantum_cycles,
            shuffle_cycles,
            cluster_thresh,
            served_current: BTreeMap::new(),
            latency_cluster: Vec::new(),
            bw_rank: Vec::new(),
            next_quantum: quantum_cycles,
            next_shuffle: shuffle_cycles,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn is_latency_sensitive(&self, source: SourceId) -> bool {
        self.latency_cluster.contains(&source)
    }

    fn rank_of(&self, source: SourceId) -> usize {
        self.bw_rank
            .iter()
            .position(|&s| s == source)
            .unwrap_or(usize::MAX)
    }

    fn reform_clusters(&mut self) {
        let total: u64 = self.served_current.values().sum();
        let mut by_intensity: Vec<(SourceId, u64)> =
            self.served_current.iter().map(|(&s, &v)| (s, v)).collect();
        by_intensity.sort_by_key(|&(s, v)| (v, s));
        self.latency_cluster.clear();
        self.bw_rank.clear();
        let budget = (total as f64 * self.cluster_thresh) as u64;
        let mut used = 0u64;
        for (src, v) in by_intensity {
            if used + v <= budget {
                used += v;
                self.latency_cluster.push(src);
            } else {
                self.bw_rank.push(src);
            }
        }
        self.served_current.values_mut().for_each(|v| *v = 0);
    }

    fn shuffle_ranks(&mut self) {
        // Fisher–Yates over the bandwidth cluster.
        for i in (1..self.bw_rank.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.bw_rank.swap(i, j);
        }
    }
}

impl Default for Tcm {
    fn default() -> Self {
        // Quantum/shuffle periods scaled to the short horizons of this
        // study (the original proposal re-clusters every ~1M cycles on full
        // applications); clusters must re-form several times per run.
        Self::new(8_000, 2_000, 4.0 / 24.0, 0x7c3)
    }
}

impl SchedulingPolicy for Tcm {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize> {
        let cands = input.candidates;
        if cands.is_empty() {
            return None;
        }
        // (1) Latency-sensitive cluster first.
        let latency: Vec<Candidate> = cands
            .iter()
            .copied()
            .filter(|c| self.is_latency_sensitive(c.source))
            .collect();
        let pool: Vec<Candidate> = if !latency.is_empty() {
            latency
        } else {
            // (2) Highest-ranked bandwidth-cluster source.
            let best_rank = cands.iter().map(|c| self.rank_of(c.source)).min()?;
            cands
                .iter()
                .copied()
                .filter(|c| self.rank_of(c.source) == best_rank)
                .collect()
        };
        // (3) Row hit, (4) oldest.
        let pick = oldest_where(&pool, |c| c.row_hit).or_else(|| oldest(&pool))?;
        let chosen = pool[pick];
        cands.iter().position(|c| c.queue_idx == chosen.queue_idx)
    }

    fn on_enqueue(&mut self, source: SourceId) {
        // Ensure newly seen sources participate in the next clustering.
        self.served_current.entry(source).or_insert(0);
    }

    fn on_served(&mut self, source: SourceId, _bytes: u64) {
        *self.served_current.entry(source).or_insert(0) += 1;
    }

    fn on_cycle(&mut self, cycle: u64) {
        if cycle >= self.next_quantum {
            self.reform_clusters();
            self.next_quantum = cycle + self.quantum_cycles;
        }
        if cycle >= self.next_shuffle {
            self.shuffle_ranks();
            self.next_shuffle = cycle + self.shuffle_cycles;
        }
    }

    fn next_wakeup(&self) -> u64 {
        self.next_quantum.min(self.next_shuffle)
    }
}

/// SMS: Staged Memory Scheduling (Ausavarungnirun et al., ISCA'12).
///
/// Requests are conceptually grouped into per-source same-row batches; the
/// scheduler then picks, with probability `p`, the source with the shortest
/// outstanding work (favouring latency-sensitive sources) and otherwise
/// round-robins across sources (fairness). Within the selected source, the
/// oldest request goes first so batches drain in order.
#[derive(Debug)]
pub struct Sms {
    /// Probability of the shortest-job-first stage (the paper's `p`).
    pub p_shortest: f64,
    round_robin_next: usize,
    rng: SmallRng,
}

impl Sms {
    /// Creates SMS with an explicit shortest-first probability and RNG seed.
    pub fn new(p_shortest: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_shortest),
            "probability must be in [0, 1]"
        );
        Self {
            p_shortest,
            round_robin_next: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Default for Sms {
    fn default() -> Self {
        Self::new(0.9, 0x515)
    }
}

impl SchedulingPolicy for Sms {
    fn name(&self) -> &'static str {
        "SMS"
    }

    fn choose(&mut self, input: &ScheduleInput<'_>) -> Option<usize> {
        let cands = input.candidates;
        if cands.is_empty() {
            return None;
        }
        let mut sources: Vec<SourceId> = cands.iter().map(|c| c.source).collect();
        sources.sort_unstable();
        sources.dedup();

        let target = if self.rng.gen_bool(self.p_shortest) {
            // Shortest job first: least pending work controller-wide.
            // `sources` is non-empty (candidates were), so the min exists;
            // `?` keeps the no-candidate contract without a panic path.
            sources
                .iter()
                .copied()
                .min_by_key(|s| (input.pending_per_source.get(s).copied().unwrap_or(0), *s))?
        } else {
            // Round-robin across currently present sources.
            let idx = self.round_robin_next % sources.len();
            self.round_robin_next = self.round_robin_next.wrapping_add(1);
            sources[idx]
        };

        let pool: Vec<Candidate> = cands
            .iter()
            .copied()
            .filter(|c| c.source == target)
            .collect();
        let pick = oldest_where(&pool, |c| c.row_hit).or_else(|| oldest(&pool))?;
        let chosen = pool[pick];
        cands.iter().position(|c| c.queue_idx == chosen.queue_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(queue_idx: usize, source: usize, row_hit: bool, arrival: u64) -> Candidate {
        Candidate {
            queue_idx,
            source: SourceId(source),
            row_hit,
            arrival,
            bank: 0,
            row: 0,
        }
    }

    fn input<'a>(
        cycle: u64,
        cands: &'a [Candidate],
        pending: &'a BTreeMap<SourceId, usize>,
    ) -> ScheduleInput<'a> {
        ScheduleInput {
            cycle,
            candidates: cands,
            pending_per_source: pending,
        }
    }

    #[test]
    fn all_policies_return_none_on_empty() {
        let pending = BTreeMap::new();
        for kind in PolicyKind::all() {
            let mut p = kind.instantiate();
            assert_eq!(p.choose(&input(0, &[], &pending)), None, "{kind}");
        }
    }

    #[test]
    fn all_policies_pick_the_only_candidate() {
        let pending = BTreeMap::new();
        let cands = [cand(3, 0, false, 10)];
        for kind in PolicyKind::all() {
            let mut p = kind.instantiate();
            assert_eq!(p.choose(&input(20, &cands, &pending)), Some(0), "{kind}");
        }
    }

    #[test]
    fn fcfs_ignores_row_hits() {
        let pending = BTreeMap::new();
        let cands = [cand(0, 0, true, 20), cand(1, 1, false, 10)];
        let mut p = Fcfs::new();
        assert_eq!(p.choose(&input(30, &cands, &pending)), Some(1));
    }

    #[test]
    fn frfcfs_prefers_row_hit_over_older() {
        let pending = BTreeMap::new();
        let cands = [cand(0, 0, true, 20), cand(1, 1, false, 10)];
        let mut p = FrFcfs::new();
        assert_eq!(p.choose(&input(30, &cands, &pending)), Some(0));
    }

    #[test]
    fn frfcfs_falls_back_to_oldest() {
        let pending = BTreeMap::new();
        let cands = [cand(0, 0, false, 20), cand(1, 1, false, 10)];
        let mut p = FrFcfs::new();
        assert_eq!(p.choose(&input(30, &cands, &pending)), Some(1));
    }

    #[test]
    fn atlas_prioritizes_least_attained_service() {
        let pending = BTreeMap::new();
        let mut p = Atlas::default();
        // Source 0 has received lots of service; source 1 none.
        p.on_served(SourceId(0), 1_000_000);
        p.on_enqueue(SourceId(1));
        p.on_cycle(0); // recompute ranks for the epoch
        let cands = [cand(0, 0, true, 5), cand(1, 1, false, 10)];
        assert_eq!(p.choose(&input(50, &cands, &pending)), Some(1));
    }

    #[test]
    fn atlas_starvation_threshold_overrides_service() {
        let pending = BTreeMap::new();
        let mut p = Atlas::new(100, 50_000, 1_000, 0.875);
        p.on_served(SourceId(0), 1_000_000);
        p.on_enqueue(SourceId(1));
        p.on_cycle(0);
        // Source 0's request is over the 100-cycle threshold.
        let cands = [cand(0, 0, false, 0), cand(1, 1, true, 190)];
        assert_eq!(p.choose(&input(200, &cands, &pending)), Some(0));
    }

    #[test]
    fn atlas_rank_is_stable_within_an_epoch() {
        let pending = BTreeMap::new();
        let mut p = Atlas::default();
        p.on_served(SourceId(0), 1_000_000);
        p.on_enqueue(SourceId(1));
        p.on_cycle(0);
        let cands = [cand(0, 0, true, 5), cand(1, 1, false, 10)];
        // Serving source 1 repeatedly does not flip the rank until the next
        // epoch boundary.
        for _ in 0..10 {
            assert_eq!(p.choose(&input(50, &cands, &pending)), Some(1));
            p.on_served(SourceId(1), 1_000_000_000);
        }
        p.on_cycle(p.epoch_cycles + 1);
        assert_eq!(p.choose(&input(50, &cands, &pending)), Some(0));
    }

    #[test]
    fn atlas_service_decays_across_quanta() {
        let mut p = Atlas::new(1_000, 100, 50, 0.5);
        p.on_served(SourceId(0), 1000);
        p.on_cycle(100);
        // total = 0.5*0 + 0.5*1000 = 500; current reset.
        assert!((p.attained_service(SourceId(0)) - 500.0).abs() < 1e-9);
        p.on_cycle(200);
        assert!((p.attained_service(SourceId(0)) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn atlas_ties_broken_by_row_hit() {
        let pending = BTreeMap::new();
        let mut p = Atlas::default();
        let cands = [cand(0, 0, false, 5), cand(1, 1, true, 10)];
        assert_eq!(p.choose(&input(50, &cands, &pending)), Some(1));
    }

    #[test]
    fn tcm_prioritizes_latency_sensitive_cluster() {
        let pending = BTreeMap::new();
        let mut p = Tcm::default();
        // Source 1 is heavy, source 0 light.
        for _ in 0..100 {
            p.on_served(SourceId(1), 64);
        }
        p.on_served(SourceId(0), 64);
        p.on_cycle(p.quantum_cycles); // reform clusters
        assert!(p.is_latency_sensitive(SourceId(0)));
        assert!(!p.is_latency_sensitive(SourceId(1)));
        let cands = [cand(0, 1, true, 0), cand(1, 0, false, 50)];
        assert_eq!(p.choose(&input(60_000, &cands, &pending)), Some(1));
    }

    #[test]
    fn tcm_shuffle_changes_rank_order_eventually() {
        let mut p = Tcm::default();
        for s in 0..4 {
            for _ in 0..100 {
                p.on_served(SourceId(s), 64);
            }
        }
        p.on_cycle(p.quantum_cycles);
        let before = p.bw_rank.clone();
        assert_eq!(before.len(), 4);
        let mut changed = false;
        let mut t = p.quantum_cycles;
        for _ in 0..32 {
            t += p.shuffle_cycles;
            p.on_cycle(t);
            if p.bw_rank != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "rank order never shuffled");
    }

    #[test]
    fn sms_shortest_first_picks_lightest_source() {
        let mut pending = BTreeMap::new();
        pending.insert(SourceId(0), 100);
        pending.insert(SourceId(1), 2);
        let mut p = Sms::new(1.0, 42); // always shortest-first
        let cands = [cand(0, 0, true, 0), cand(1, 1, false, 50)];
        assert_eq!(p.choose(&input(60, &cands, &pending)), Some(1));
    }

    #[test]
    fn sms_round_robin_rotates_sources() {
        let pending = BTreeMap::new();
        let mut p = Sms::new(0.0, 42); // always round-robin
        let cands = [cand(0, 0, false, 0), cand(1, 1, false, 0)];
        let first = p.choose(&input(10, &cands, &pending)).unwrap();
        let second = p.choose(&input(11, &cands, &pending)).unwrap();
        assert_ne!(cands[first].source, cands[second].source);
    }

    #[test]
    fn policy_kind_labels_and_fairness() {
        assert_eq!(PolicyKind::FrFcfs.label(), "FR-FCFS");
        assert!(!PolicyKind::Fcfs.has_fairness_control());
        assert!(PolicyKind::Atlas.has_fairness_control());
        assert_eq!(PolicyKind::all().len(), 5);
        assert_eq!(PolicyKind::fairness_aware().len(), 3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn atlas_rejects_bad_alpha() {
        let _ = Atlas::new(1, 1, 1, 1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn sms_rejects_bad_probability() {
        let _ = Sms::new(-0.1, 0);
    }
}
