//! Synthetic traffic generators.
//!
//! These play the role of the paper's "calibrators": controllable memory
//! traffic generators with an adjustable bandwidth demand (Section 3.2).
//! A [`StreamTraffic`] source emits line-sized requests at a target rate,
//! with a configurable probability of staying within the current DRAM row
//! (row locality) and a bounded number of outstanding requests (memory-level
//! parallelism).

use crate::config::DramConfig;
use crate::controller::Completion;
use crate::request::{MemoryRequest, ReqKind, SourceId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Walks addresses within a private region as a sequence of sequential
/// runs separated by jumps to uniformly random lines.
///
/// The `row_locality` parameter maps to the mean run length
/// `64 × p / (1 − p)` lines, so `p = 0.92` yields ≈740-line sequential runs
/// (high row-buffer hit rate under channel interleaving) while `p = 0.4`
/// yields ≈43-line runs (poor locality, BFS-like). Jump targets are
/// uniform over the region — deliberately *not* row-aligned, so that
/// co-located sources spread across banks instead of aliasing onto bank 0
/// through power-of-two-aligned bases.
#[derive(Debug, Clone)]
pub struct AddressWalker {
    region_base: u64,
    region_lines: u64,
    line_bytes: u64,
    offset_lines: u64,
    run_left: u64,
    mean_run_lines: f64,
}

impl AddressWalker {
    /// Creates a walker over `[region_base, region_base + region_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two lines or `row_locality`
    /// is outside `[0, 1]`.
    pub fn new(region_base: u64, region_bytes: u64, line_bytes: u64, row_locality: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&row_locality),
            "locality must be a probability"
        );
        let region_lines = region_bytes / line_bytes;
        assert!(region_lines >= 2, "region must hold at least two lines");
        let mean_run_lines = if row_locality >= 1.0 {
            f64::INFINITY
        } else {
            (64.0 * row_locality / (1.0 - row_locality)).max(1.0)
        };
        Self {
            region_base,
            region_lines,
            line_bytes,
            offset_lines: 0,
            run_left: 0, // draw the first run (and starting line) on first use
            mean_run_lines,
        }
    }

    /// The next line address.
    pub fn next_addr(&mut self, rng: &mut SmallRng) -> u64 {
        if self.run_left == 0 {
            self.offset_lines = rng.gen_range(0..self.region_lines);
            self.run_left = self.draw_run(rng);
        }
        let addr = self.region_base + self.offset_lines * self.line_bytes;
        self.offset_lines = (self.offset_lines + 1) % self.region_lines;
        self.run_left = self.run_left.saturating_sub(1);
        addr
    }

    fn draw_run(&mut self, rng: &mut SmallRng) -> u64 {
        if self.mean_run_lines.is_infinite() {
            return u64::MAX;
        }
        // Exponentially distributed run length with the configured mean.
        let u: f64 = rng.gen_range(0.0..1.0);
        ((-(1.0 - u).ln()) * self.mean_run_lines).ceil().max(1.0) as u64
    }
}

/// A generator of memory requests driven by the simulation loop.
pub trait TrafficSource: fmt::Debug + Send {
    /// The id under which this source's requests are issued.
    fn source_id(&self) -> SourceId;

    /// Binds the generator to a memory geometry (converts GB/s demand into
    /// bytes per cycle, sizes address regions). Called once by
    /// [`DramSystem::add_generator`](crate::sim::DramSystem::add_generator).
    fn bind(&mut self, config: &DramConfig);

    /// Produces the next request to enqueue at `cycle`, if the source has
    /// both credit (demand rate) and window (outstanding cap) available.
    /// Called repeatedly within a cycle until it returns `None`.
    fn poll(&mut self, cycle: u64) -> Option<MemoryRequest>;

    /// Notification that a previously emitted request was rejected by a full
    /// controller queue; the source should retry it later.
    fn on_reject(&mut self, req: MemoryRequest);

    /// Notification that a request completed.
    fn on_complete(&mut self, completion: &Completion);

    /// Requests completed so far.
    fn completed(&self) -> u64;

    /// Requests emitted so far.
    fn issued(&self) -> u64;

    /// Units of forward progress made so far. For plain traffic generators
    /// this equals [`TrafficSource::completed`]; compute-coupled sources
    /// (processing units) report fully *processed* work instead, which is
    /// what slowdown measurements compare.
    fn progress(&self) -> u64 {
        self.completed()
    }

    /// The earliest cycle `>= cycle` at which [`TrafficSource::poll`]
    /// could emit a request, or `None` if the source is blocked on an
    /// external event (a completion) or will never emit again. Used by
    /// the event-driven engine to skip stall spans; answers may
    /// *undershoot* (the driver re-polls and re-asks) but must never
    /// overshoot, or the fast path would emit later than the cycle-exact
    /// reference. The default — "poll me every cycle" — is always
    /// correct and simply disables skip-ahead for this source.
    fn next_emit_at(&self, cycle: u64) -> Option<u64> {
        Some(cycle)
    }

    /// Advances internal per-cycle state across the skipped span
    /// `[from, to)` exactly as if [`TrafficSource::poll`] had been called
    /// once per cycle with no emission and no completion delivery. Paired
    /// with [`TrafficSource::next_emit_at`]; sources using the default
    /// hint never see a skipped span, so the default is a no-op.
    fn fast_forward(&mut self, from: u64, to: u64) {
        let _ = (from, to);
    }
}

/// A rate-limited streaming traffic source.
///
/// Construct with [`StreamTraffic::builder`]. The source emits 64-byte line
/// requests at `demand_gbps`, walking addresses sequentially (which yields
/// high row locality under channel interleaving) and jumping to a random row
/// with probability `1 - row_locality` after each request.
#[derive(Debug)]
pub struct StreamTraffic {
    source: SourceId,
    demand_gbps: f64,
    row_locality: f64,
    write_fraction: f64,
    window: usize,
    region_bytes: u64,
    #[allow(dead_code)]
    seed: u64,

    rate_bytes_per_cycle: f64,
    line_bytes: u64,
    credit: f64,
    last_cycle: Option<u64>,
    outstanding: usize,
    issued: u64,
    completed: u64,
    walker: Option<AddressWalker>,
    retry: Option<MemoryRequest>,
    rng: SmallRng,
}

impl StreamTraffic {
    /// Starts building a stream for `source`.
    pub fn builder(source: SourceId) -> StreamTrafficBuilder {
        StreamTrafficBuilder {
            source,
            demand_gbps: 10.0,
            row_locality: 0.9,
            write_fraction: 0.0,
            window: 64,
            region_bytes: 256 << 20,
            seed: 0x9e37_79b9,
        }
    }

    /// The configured bandwidth demand in GB/s.
    pub fn demand_gbps(&self) -> f64 {
        self.demand_gbps
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

/// Builder for [`StreamTraffic`] (see [`StreamTraffic::builder`]).
#[derive(Debug, Clone)]
pub struct StreamTrafficBuilder {
    source: SourceId,
    demand_gbps: f64,
    row_locality: f64,
    write_fraction: f64,
    window: usize,
    region_bytes: u64,
    seed: u64,
}

impl StreamTrafficBuilder {
    /// Target standalone bandwidth demand in GB/s.
    pub fn demand_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps >= 0.0, "demand must be non-negative");
        self.demand_gbps = gbps;
        self
    }

    /// Probability of the next request staying in the current row region
    /// (0 = random rows every request, 1 = perfectly sequential).
    pub fn row_locality(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "locality must be a probability");
        self.row_locality = p;
        self
    }

    /// Fraction of requests that are writes.
    pub fn write_fraction(mut self, f: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&f),
            "write fraction must be a probability"
        );
        self.write_fraction = f;
        self
    }

    /// Maximum outstanding requests (memory-level parallelism).
    pub fn window(mut self, w: usize) -> Self {
        assert!(w > 0, "window must be positive");
        self.window = w;
        self
    }

    /// Size of this source's private address region in bytes.
    pub fn region_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes >= 1 << 20, "region must be at least 1 MiB");
        self.region_bytes = bytes;
        self
    }

    /// RNG seed, for reproducible runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the stream.
    pub fn build(self) -> StreamTraffic {
        StreamTraffic {
            source: self.source,
            demand_gbps: self.demand_gbps,
            row_locality: self.row_locality,
            write_fraction: self.write_fraction,
            window: self.window,
            region_bytes: self.region_bytes,
            seed: self.seed,
            rate_bytes_per_cycle: 0.0,
            line_bytes: 64,
            credit: 0.0,
            last_cycle: None,
            outstanding: 0,
            issued: 0,
            completed: 0,
            walker: None,
            retry: None,
            rng: SmallRng::seed_from_u64(
                self.seed ^ (self.source.0 as u64).wrapping_mul(0xa076_1d64_78bd_642f),
            ),
        }
    }
}

impl TrafficSource for StreamTraffic {
    fn source_id(&self) -> SourceId {
        self.source
    }

    fn bind(&mut self, config: &DramConfig) {
        self.rate_bytes_per_cycle = config.gbps_to_bytes_per_cycle(self.demand_gbps);
        self.line_bytes = u64::from(config.line_bytes);
        // Give each source a disjoint region so sources never share rows.
        let region_base = self.source.0 as u64 * self.region_bytes;
        self.walker = Some(AddressWalker::new(
            region_base,
            self.region_bytes,
            self.line_bytes,
            self.row_locality,
        ));
    }

    fn poll(&mut self, cycle: u64) -> Option<MemoryRequest> {
        if let Some(req) = self.retry.take() {
            return Some(req);
        }
        if self.last_cycle != Some(cycle) {
            self.last_cycle = Some(cycle);
            self.credit = (self.credit + self.rate_bytes_per_cycle)
                .min(self.rate_bytes_per_cycle * 64.0 + self.line_bytes as f64);
        }
        if self.credit < self.line_bytes as f64 || self.outstanding >= self.window {
            return None;
        }
        self.credit -= self.line_bytes as f64;
        self.outstanding += 1;

        let addr = self
            .walker
            .as_mut()
            // Lifecycle contract: `add_generator` always binds before the
            // first poll; returning None here would silently mask a misuse.
            .expect("bind must be called before poll") // pccs-lint: allow(hot-path-panic)
            .next_addr(&mut self.rng);

        let id = self.issued;
        self.issued += 1;
        let kind = if self.write_fraction > 0.0 && self.rng.gen_bool(self.write_fraction) {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        let mut req = MemoryRequest::read(id, self.source, addr, cycle);
        req.kind = kind;
        req.bytes = self.line_bytes as u32;
        Some(req)
    }

    fn on_reject(&mut self, req: MemoryRequest) {
        // Hold the request and retry next poll; outstanding stays counted.
        self.retry = Some(req);
    }

    fn on_complete(&mut self, _completion: &Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.completed += 1;
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn next_emit_at(&self, cycle: u64) -> Option<u64> {
        if self.retry.is_some() {
            // A pending retry forces per-cycle stepping: the retry/refill
            // interleaving must replay exactly as the cycle-exact loop.
            return Some(cycle);
        }
        if self.outstanding >= self.window {
            return None; // Unblocks on a completion — an executed cycle.
        }
        let line = self.line_bytes as f64;
        if self.credit >= line {
            return Some(cycle); // Credit only grows until spent.
        }
        let rate = self.rate_bytes_per_cycle;
        if rate <= 0.0 {
            return None;
        }
        // Replay the exact capped-refill recurrence poll() runs once per
        // cycle, so the predicted emission cycle is bit-faithful to the
        // per-cycle reference. Bounded: beyond it, fall back to a
        // guaranteed undershoot (half the exact-arithmetic estimate can
        // never pass the true floating-point crossing), which the driver
        // refines on the next wake-up.
        const MAX_EXACT_STEPS: u64 = 512;
        let cap = rate * 64.0 + line;
        let mut credit = self.credit;
        for j in 1..=MAX_EXACT_STEPS {
            credit = (credit + rate).min(cap);
            if credit >= line {
                return Some(cycle + j - 1);
            }
        }
        let est = ((line - self.credit) / rate).max(2.0);
        let back = ((est / 2.0) as u64).max(MAX_EXACT_STEPS);
        Some(cycle + back - 1)
    }

    fn fast_forward(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(self.retry.is_none(), "fast-forward with a pending retry");
        // The same once-per-cycle capped refill poll() performs, with an
        // early exit once the cap is reached (further refills are exact
        // no-ops, so skipping them is bit-identical).
        let cap = self.rate_bytes_per_cycle * 64.0 + self.line_bytes as f64;
        let mut n = to - from;
        while n > 0 && self.credit < cap {
            self.credit = (self.credit + self.rate_bytes_per_cycle).min(cap);
            n -= 1;
        }
        self.last_cycle = Some(to - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(demand: f64) -> StreamTraffic {
        let mut s = StreamTraffic::builder(SourceId(0))
            .demand_gbps(demand)
            .build();
        s.bind(&DramConfig::cmp_study());
        s
    }

    #[test]
    fn rate_limiting_matches_demand() {
        // 25.6 GB/s on a 1600 MHz clock = 16 B/cycle = one 64 B line per 4
        // cycles.
        let mut s = bound(25.6);
        let mut emitted = 0;
        for cycle in 0..400 {
            while let Some(req) = s.poll(cycle) {
                emitted += 1;
                s.on_complete(&Completion {
                    request_id: req.id,
                    source: req.source,
                    finish: cycle,
                });
            }
        }
        // 400 cycles * 16 B = 6400 B = 100 lines.
        assert!((95..=101).contains(&emitted), "emitted {emitted}");
    }

    #[test]
    fn window_caps_outstanding() {
        let mut s = StreamTraffic::builder(SourceId(0))
            .demand_gbps(1000.0)
            .window(4)
            .build();
        s.bind(&DramConfig::cmp_study());
        let mut got = 0;
        for _ in 0..100 {
            if s.poll(0).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 4);
        assert_eq!(s.outstanding(), 4);
    }

    #[test]
    fn rejected_request_is_retried() {
        let mut s = bound(100.0);
        // Advance cycles until the credit admits a request (credit only
        // refills when the cycle advances).
        let (cycle, req) = (0..100)
            .find_map(|c| s.poll(c).map(|r| (c, r)))
            .expect("credit accumulates within 100 cycles");
        s.on_reject(req);
        let retried = s.poll(cycle + 1).expect("retry should surface first");
        assert_eq!(retried.id, req.id);
        assert_eq!(retried.addr, req.addr);
    }

    #[test]
    fn sequential_locality_walks_lines() {
        let mut s = StreamTraffic::builder(SourceId(0))
            .demand_gbps(1000.0)
            .row_locality(1.0)
            .window(1024)
            .build();
        s.bind(&DramConfig::cmp_study());
        let a = s.poll(0).unwrap().addr;
        let b = s.poll(0).unwrap().addr;
        assert_eq!(b - a, 64);
    }

    #[test]
    fn random_locality_jumps_rows() {
        let mut s = StreamTraffic::builder(SourceId(0))
            .demand_gbps(1000.0)
            .row_locality(0.0)
            .window(1024)
            .seed(7)
            .build();
        s.bind(&DramConfig::cmp_study());
        let addrs: Vec<u64> = (0..40u64)
            .filter_map(|c| s.poll(c))
            .map(|r| r.addr)
            .collect();
        assert!(addrs.len() >= 20, "enough requests emitted");
        let distinct: std::collections::HashSet<_> = addrs.iter().collect();
        assert!(distinct.len() > 10, "random walk should spread addresses");
    }

    #[test]
    fn sources_get_disjoint_regions() {
        let c = DramConfig::cmp_study();
        let region: u64 = 256 << 20;
        let mut a = StreamTraffic::builder(SourceId(0))
            .demand_gbps(200.0)
            .build();
        let mut b = StreamTraffic::builder(SourceId(1))
            .demand_gbps(200.0)
            .build();
        a.bind(&c);
        b.bind(&c);
        let ra = a.poll(0).unwrap().addr;
        let rb = b.poll(0).unwrap().addr;
        assert!(ra < region, "source 0 stays in its region");
        assert!(
            (region..2 * region).contains(&rb),
            "source 1 stays in its region"
        );
    }

    #[test]
    fn zero_demand_emits_nothing() {
        let mut s = bound(0.0);
        for cycle in 0..1000 {
            assert!(s.poll(cycle).is_none());
        }
    }

    #[test]
    fn write_fraction_produces_writes() {
        let mut s = StreamTraffic::builder(SourceId(0))
            .demand_gbps(1000.0)
            .write_fraction(0.5)
            .window(4096)
            .seed(3)
            .build();
        s.bind(&DramConfig::cmp_study());
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            if let Some(r) = s.poll(0) {
                match r.kind {
                    ReqKind::Read => reads += 1,
                    ReqKind::Write => writes += 1,
                }
            }
        }
        assert!(reads > 0 && writes > 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn builder_rejects_bad_locality() {
        let _ = StreamTraffic::builder(SourceId(0)).row_locality(1.5);
    }
}
