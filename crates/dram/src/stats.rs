//! Per-source and aggregate memory-system statistics.

use crate::config::DramConfig;
use crate::request::SourceId;
use crate::timing::RowOutcome;
use pccs_telemetry::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics accumulated for one traffic source.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SourceStats {
    /// Requests served.
    pub served: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Row-buffer hits observed by served requests.
    pub row_hits: u64,
    /// Row misses (bank was precharged).
    pub row_misses: u64,
    /// Row conflicts (another row was open).
    pub row_conflicts: u64,
    /// Sum of queueing + service latency over served requests, in cycles.
    pub total_latency: u64,
    /// Largest single-request latency, in cycles.
    pub max_latency: u64,
    /// Requests enqueued (may exceed `served` at the end of a run).
    pub enqueued: u64,
    /// Requests the source wanted to enqueue but could not because the
    /// controller queue was full (back-pressure).
    pub rejected: u64,
    /// Log-binned distribution of per-request latencies; `total_latency`
    /// and `max_latency` summarize the same samples.
    pub latency: LatencyHistogram,
}

impl SourceStats {
    /// Mean request latency in cycles, or 0 when nothing was served.
    pub fn avg_latency(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.served as f64
        }
    }

    /// Fraction of served requests that hit in the row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.served as f64
        }
    }

    /// Latency at or below which `p` percent of requests completed
    /// (log-binned; see [`LatencyHistogram::percentile`]).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.latency.percentile(p)
    }

    /// Like [`SourceStats::latency_percentile`] but distinguishes "no
    /// requests served" (`None`) from a genuine zero-cycle latency, and
    /// reports the exact sample when only one request was served (see
    /// [`LatencyHistogram::try_percentile`]).
    pub fn try_latency_percentile(&self, p: f64) -> Option<u64> {
        self.latency.try_percentile(p)
    }
}

/// Statistics for an entire simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Per-source breakdown, ordered by source id.
    pub per_source: BTreeMap<SourceId, SourceStats>,
    /// Cycles simulated.
    pub elapsed_cycles: u64,
    /// Scheduler diagnostics, summed over channels.
    pub scheduler: SchedulerStats,
}

/// Aggregate scheduler diagnostics (summed over channels and cycles).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Channel-cycles in which a request was issued.
    pub issued: u64,
    /// Channel-cycles skipped because the data-bus backlog guard tripped.
    pub bus_blocked: u64,
    /// Channel-cycles with a non-empty queue but no issuable candidate
    /// (all target banks busy or shielded).
    pub no_candidate: u64,
    /// Channel-cycles with an empty queue.
    pub idle: u64,
    /// Peak per-channel queue occupancy observed over the run (a
    /// high-watermark, so merges take the max rather than the sum).
    pub queue_hwm: u64,
}

impl MemoryStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to (and creation of) one source's statistics.
    pub fn source_mut(&mut self, source: SourceId) -> &mut SourceStats {
        self.per_source.entry(source).or_default()
    }

    /// Records a served request.
    pub fn record_served(
        &mut self,
        source: SourceId,
        bytes: u64,
        outcome: RowOutcome,
        latency: u64,
    ) {
        let s = self.source_mut(source);
        s.served += 1;
        s.bytes += bytes;
        match outcome {
            RowOutcome::Hit => s.row_hits += 1,
            RowOutcome::Miss => s.row_misses += 1,
            RowOutcome::Conflict => s.row_conflicts += 1,
        }
        s.total_latency += latency;
        s.max_latency = s.max_latency.max(latency);
        s.latency.record(latency);
    }

    /// Total bytes served across all sources.
    pub fn total_bytes(&self) -> u64 {
        self.per_source.values().map(|s| s.bytes).sum()
    }

    /// Total requests served across all sources.
    pub fn total_served(&self) -> u64 {
        self.per_source.values().map(|s| s.served).sum()
    }

    /// Aggregate row-buffer hit rate across all sources (fraction in 0..=1).
    pub fn row_hit_rate(&self) -> f64 {
        let served = self.total_served();
        if served == 0 {
            return 0.0;
        }
        let hits: u64 = self.per_source.values().map(|s| s.row_hits).sum();
        hits as f64 / served as f64
    }

    /// Bandwidth attained by one source in GB/s.
    pub fn source_bw_gbps(&self, source: SourceId, config: &DramConfig) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let bytes = self.per_source.get(&source).map(|s| s.bytes).unwrap_or(0);
        config.bytes_per_cycle_to_gbps(bytes as f64 / self.elapsed_cycles as f64)
    }

    /// Aggregate effective bandwidth across all sources in GB/s.
    pub fn effective_bw_gbps(&self, config: &DramConfig) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        config.bytes_per_cycle_to_gbps(self.total_bytes() as f64 / self.elapsed_cycles as f64)
    }

    /// Effective bandwidth as a percentage of the theoretical peak (the
    /// "Effective BW Percentage over Peak BW" row of Table 3).
    pub fn effective_bw_pct(&self, config: &DramConfig) -> f64 {
        100.0 * self.effective_bw_gbps(config) / config.peak_bw_gbps()
    }

    /// Publishes this run's totals into the process-global metrics
    /// registry (`dram.*` names; see DESIGN.md §9). Called once at the end
    /// of a run, never from the per-cycle loop, so registry cost stays off
    /// the hot path.
    pub fn publish_metrics(&self) {
        use pccs_telemetry::metrics;
        if !metrics::is_enabled() {
            return;
        }
        metrics::add("dram.cycles", self.elapsed_cycles);
        metrics::add("dram.bytes", self.total_bytes());
        metrics::add("dram.requests.served", self.total_served());
        let sum = |f: fn(&SourceStats) -> u64| self.per_source.values().map(f).sum::<u64>();
        metrics::add("dram.requests.enqueued", sum(|s| s.enqueued));
        metrics::add("dram.requests.rejected", sum(|s| s.rejected));
        metrics::add("dram.row.hits", sum(|s| s.row_hits));
        metrics::add("dram.row.misses", sum(|s| s.row_misses));
        metrics::add("dram.row.conflicts", sum(|s| s.row_conflicts));
        metrics::add("dram.sched.issued", self.scheduler.issued);
        metrics::add("dram.sched.bus_blocked", self.scheduler.bus_blocked);
        metrics::add("dram.sched.no_candidate", self.scheduler.no_candidate);
        metrics::add("dram.sched.idle", self.scheduler.idle);
        metrics::observe_max("dram.queue.hwm", self.scheduler.queue_hwm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_served_accumulates() {
        let mut m = MemoryStats::new();
        m.record_served(SourceId(0), 64, RowOutcome::Hit, 30);
        m.record_served(SourceId(0), 64, RowOutcome::Conflict, 90);
        m.record_served(SourceId(1), 64, RowOutcome::Miss, 44);
        let s0 = &m.per_source[&SourceId(0)];
        assert_eq!(s0.served, 2);
        assert_eq!(s0.bytes, 128);
        assert_eq!(s0.row_hits, 1);
        assert_eq!(s0.row_conflicts, 1);
        assert_eq!(s0.max_latency, 90);
        assert!((s0.avg_latency() - 60.0).abs() < 1e-12);
        assert_eq!(m.total_bytes(), 192);
        assert_eq!(m.total_served(), 3);
    }

    #[test]
    fn latency_histogram_tracks_served_requests() {
        let mut m = MemoryStats::new();
        for latency in [10u64, 20, 30, 40, 400] {
            m.record_served(SourceId(0), 64, RowOutcome::Hit, latency);
        }
        let s = &m.per_source[&SourceId(0)];
        assert_eq!(s.latency.count(), s.served);
        assert_eq!(s.latency.max(), s.max_latency);
        assert!((s.latency.mean() - s.avg_latency()).abs() < 1e-9);
        let p50 = s.latency_percentile(50.0);
        assert!((20..=40).contains(&p50), "p50 = {p50}");
        assert_eq!(s.latency_percentile(100.0), 400);
    }

    #[test]
    fn hit_rate_aggregates_over_sources() {
        let mut m = MemoryStats::new();
        m.record_served(SourceId(0), 64, RowOutcome::Hit, 1);
        m.record_served(SourceId(1), 64, RowOutcome::Miss, 1);
        assert!((m.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_computation() {
        let c = DramConfig::cmp_study();
        let mut m = MemoryStats::new();
        // Saturate: 4 channels * 16 B/cycle = 64 B/cycle over 1000 cycles.
        m.elapsed_cycles = 1000;
        m.source_mut(SourceId(0)).bytes = 64_000;
        assert!((m.effective_bw_gbps(&c) - c.peak_bw_gbps()).abs() < 1e-9);
        assert!((m.effective_bw_pct(&c) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn publish_metrics_flushes_totals_to_registry() {
        use pccs_telemetry::metrics;
        let mut m = MemoryStats::new();
        m.elapsed_cycles = 500;
        m.record_served(SourceId(0), 64, RowOutcome::Hit, 30);
        m.record_served(SourceId(1), 64, RowOutcome::Conflict, 90);
        m.source_mut(SourceId(0)).enqueued = 3;
        m.scheduler.issued = 2;
        m.scheduler.queue_hwm = 7;
        // The registry is process-global and tests run concurrently, so
        // assert on deltas of handles read before and after.
        let served = metrics::counter("dram.requests.served");
        let cycles = metrics::counter("dram.cycles");
        let hwm = metrics::gauge("dram.queue.hwm");
        let (served0, cycles0) = (served.get(), cycles.get());
        m.publish_metrics();
        assert_eq!(served.get() - served0, 2);
        assert_eq!(cycles.get() - cycles0, 500);
        assert!(hwm.get() >= 7);
    }

    #[test]
    fn try_percentile_distinguishes_empty_sources() {
        let mut m = MemoryStats::new();
        assert_eq!(m.source_mut(SourceId(0)).try_latency_percentile(99.0), None);
        m.record_served(SourceId(0), 64, RowOutcome::Hit, 12_345);
        let s = &m.per_source[&SourceId(0)];
        assert_eq!(s.try_latency_percentile(50.0), Some(12_345));
        assert_eq!(s.latency_percentile(50.0), 12_345);
    }

    #[test]
    fn empty_stats_are_zero() {
        let c = DramConfig::cmp_study();
        let m = MemoryStats::new();
        assert_eq!(m.row_hit_rate(), 0.0);
        assert_eq!(m.effective_bw_gbps(&c), 0.0);
        assert_eq!(m.source_bw_gbps(SourceId(9), &c), 0.0);
    }
}
