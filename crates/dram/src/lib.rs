//! Cycle-level DRAM and memory-controller simulator for the PCCS reproduction.
//!
//! This crate reimplements the apparatus of Section 2.3 of the PCCS paper
//! (MICRO'21): a detailed DRAM timing model (banks, rows, channels, address
//! mapping) behind a memory controller that can be configured with one of the
//! five scheduling policies studied in the paper (Table 2):
//!
//! * [`policy::Fcfs`] — first-come-first-serve,
//! * [`policy::FrFcfs`] — first-ready FCFS (row-hit prioritization),
//! * [`policy::Atlas`] — adaptive per-thread least-attained-service,
//! * [`policy::Tcm`] — thread cluster memory scheduling,
//! * [`policy::Sms`] — staged memory scheduling.
//!
//! The paper uses Ramulator + Pin for this study; we substitute a bank-state
//! timing model driven by synthetic traffic generators
//! ([`traffic::StreamTraffic`]), which is sufficient to reproduce row-buffer
//! hit-rate and effective-bandwidth differences between the policies
//! (Table 3) and the achieved-relative-speed curves of Figure 5.
//!
//! # Example
//!
//! ```
//! use pccs_dram::config::DramConfig;
//! use pccs_dram::policy::PolicyKind;
//! use pccs_dram::sim::{DramSystem, SimOutcome};
//! use pccs_dram::traffic::StreamTraffic;
//! use pccs_dram::request::SourceId;
//!
//! let config = DramConfig::cmp_study();
//! let mut system = DramSystem::new(config, PolicyKind::FrFcfs);
//! system.add_generator(StreamTraffic::builder(SourceId(0))
//!     .demand_gbps(30.0)
//!     .row_locality(0.9)
//!     .build());
//! let outcome: SimOutcome = system.run(100_000);
//! let achieved = outcome.source_bw_gbps(SourceId(0));
//! assert!(achieved > 0.0);
//! ```

/// Bank state machine.
pub mod bank;
/// Memory-system configuration and the presets used throughout the paper.
pub mod config;
/// DDR protocol conformance sanitizer.
pub mod conformance;
/// The memory controller: per-channel request queues, bank state, and the.
pub mod controller;
/// The memory-engine abstraction: cycle-exact and event-driven drivers.
pub mod engine;
/// Physical-address-to-DRAM-coordinate mapping.
pub mod mapping;
/// Multi-memory-controller SoCs. Not yet wired into the SoC models —
/// kept for the chiplet-topology roadmap item.
pub mod multi; // pccs-lint: allow(dead-pub-item)
/// Memory-controller scheduling policies (Table 2 of the paper).
pub mod policy;
/// Memory request and address types.
pub mod request;
/// The top-level DRAM simulation loop: traffic sources feeding a memory.
pub mod sim;
/// Per-source and aggregate memory-system statistics.
pub mod stats;
/// DRAM device timing parameters.
pub mod timing;
/// Trace-driven simulation support.
pub mod trace;
/// Synthetic traffic generators.
pub mod traffic;

pub use config::DramConfig;
pub use conformance::{ConformanceChecker, ConformanceReport};
pub use engine::{EngineKind, EventEngine, MemoryEngine};
pub use policy::PolicyKind;
pub use request::{MemoryRequest, ReqKind, SourceId};
pub use sim::{DramSystem, SimOutcome};
