//! The top-level DRAM simulation loop: traffic sources feeding a memory
//! controller for a fixed horizon.

use crate::config::DramConfig;
use crate::conformance::ConformanceReport;
use crate::controller::{Completion, MemoryController};
use crate::engine::{EngineKind, MemoryEngine};
use crate::policy::PolicyKind;
use crate::request::SourceId;
use crate::stats::MemoryStats;
use crate::timing::DramTiming;
use crate::traffic::TrafficSource;
use pccs_telemetry::{Recorder, TelemetryReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete DRAM simulation: a controller plus a set of traffic sources.
#[derive(Debug)]
pub struct DramSystem {
    controller: MemoryController,
    engine: EngineKind,
    generators: Vec<Box<dyn TrafficSource>>,
}

impl DramSystem {
    /// Creates a system with the given geometry and scheduling policy,
    /// driven by the cycle-exact engine.
    pub fn new(config: DramConfig, policy: PolicyKind) -> Self {
        Self {
            controller: MemoryController::new(config.clone(), policy.instantiate()),
            engine: EngineKind::Cycle,
            generators: Vec::new(),
        }
    }

    /// Creates a system with an explicit [`EngineKind`].
    pub fn with_engine(config: DramConfig, policy: PolicyKind, engine: EngineKind) -> Self {
        let mut sys = Self::new(config, policy);
        sys.engine = engine;
        sys
    }

    /// Creates a system around an existing controller (e.g. with a custom
    /// policy or address mapping).
    pub fn from_controller(controller: MemoryController) -> Self {
        Self {
            controller,
            engine: EngineKind::Cycle,
            generators: Vec::new(),
        }
    }

    /// Selects which engine drives the run (default: cycle-exact).
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// The engine kind that will drive the run.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// The memory geometry.
    pub fn config(&self) -> &DramConfig {
        self.controller.config()
    }

    /// Adds a traffic source; it is bound to this system's geometry.
    pub fn add_generator<T: TrafficSource + 'static>(&mut self, mut generator: T) {
        generator.bind(self.controller.config());
        self.generators.push(Box::new(generator));
    }

    /// Attaches a telemetry recorder to the controller; its report lands
    /// in [`SimOutcome::telemetry`].
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.controller.set_recorder(recorder);
    }

    /// Attaches the DDR protocol conformance sanitizer, validating the
    /// emitted command stream against this system's own timing; the report
    /// lands in [`SimOutcome::conformance`].
    pub fn enable_conformance(&mut self) {
        let timing = self.controller.config().timing;
        self.controller.enable_conformance(timing);
    }

    /// Like [`DramSystem::enable_conformance`] but validating against an
    /// explicit `reference` timing (to audit a deliberately broken config).
    pub fn enable_conformance_against(&mut self, reference: DramTiming) {
        self.controller.enable_conformance(reference);
    }

    /// Runs the simulation for `horizon` memory-controller cycles and
    /// returns the outcome.
    pub fn run(self, horizon: u64) -> SimOutcome {
        self.run_with_warmup(0, horizon)
    }

    /// Runs for `horizon` cycles, additionally recording a measurement
    /// window that excludes the first `warmup` cycles (cold row buffers,
    /// pipeline fill). Rates derived from [`SimOutcome::measured`] are
    /// steadier than whole-run rates on short horizons.
    ///
    /// # Panics
    ///
    /// Panics if `warmup >= horizon`.
    pub fn run_with_warmup(self, warmup: u64, horizon: u64) -> SimOutcome {
        assert!(warmup < horizon, "warmup must be shorter than the horizon");
        let DramSystem {
            controller,
            engine,
            mut generators,
        } = self;
        let config = controller.config().clone();
        let mut eng: Box<dyn MemoryEngine> = engine.wrap(controller);
        let mut warmup_progress: BTreeMap<SourceId, u64> = BTreeMap::new();
        let mut warmup_bytes: BTreeMap<SourceId, u64> = BTreeMap::new();
        let mut buf: Vec<Completion> = Vec::new();
        let mut snapped = warmup == 0;
        // The loop below steps over *executed* cycles only. The cycle
        // engine declares every cycle actionable, which degrades it to
        // the classic per-cycle loop; the event engine skips from one
        // actionable cycle to the next, with `fast_forward` carrying the
        // generators' per-cycle state across the gap bit-exactly.
        let mut now = 0u64;
        while now < horizon {
            if !snapped && now == warmup {
                // Top-of-cycle snapshot, before this cycle's polls —
                // exactly where the per-cycle loop takes it.
                for g in &generators {
                    warmup_progress.insert(g.source_id(), g.progress());
                }
                for (src, st) in &eng.stats().per_source {
                    warmup_bytes.insert(*src, st.bytes);
                }
                snapped = true;
            }
            // Let every source emit as much as it can this cycle.
            for generator in &mut generators {
                while let Some(req) = generator.poll(now) {
                    if let Err(back) = eng.enqueue(req) {
                        generator.on_reject(back);
                        break;
                    }
                }
            }
            // Advance the engine; deliver completions.
            eng.advance_to(now);
            buf.clear();
            eng.drain_completions(&mut buf);
            for completion in &buf {
                for generator in &mut generators {
                    if generator.source_id() == completion.source {
                        generator.on_complete(completion);
                        break;
                    }
                }
            }
            // Choose the next executed cycle: the engine's next actionable
            // cycle, any generator's next possible emission, the warmup
            // snapshot point, or the horizon — whichever comes first.
            let mut next = eng.next_event(now + 1).min(horizon);
            if !snapped {
                next = next.min(warmup);
            }
            for g in &generators {
                if let Some(emit) = g.next_emit_at(now + 1) {
                    next = next.min(emit.max(now + 1));
                }
            }
            let next = next.max(now + 1);
            if next > now + 1 {
                for g in &mut generators {
                    g.fast_forward(now + 1, next);
                }
            }
            now = next;
        }
        eng.finish(horizon);

        let completed: BTreeMap<SourceId, u64> = generators
            .iter()
            .map(|g| (g.source_id(), g.completed()))
            .collect();
        let progress: BTreeMap<SourceId, u64> = generators
            .iter()
            .map(|g| (g.source_id(), g.progress()))
            .collect();
        let telemetry = eng.take_report(horizon);
        let conformance = eng.conformance_report();
        let stats = eng.take_stats();
        stats.publish_metrics();
        let measured = MeasureWindow {
            cycles: horizon - warmup,
            progress: progress
                .iter()
                .map(|(s, &p)| (*s, p - warmup_progress.get(s).copied().unwrap_or(0)))
                .collect(),
            bytes: stats
                .per_source
                .iter()
                .map(|(s, st)| (*s, st.bytes - warmup_bytes.get(s).copied().unwrap_or(0)))
                .collect(),
        };
        SimOutcome {
            stats,
            config,
            horizon,
            completed,
            progress,
            measured,
            telemetry,
            conformance,
        }
    }
}

/// The result of one [`DramSystem::run`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Controller statistics (per-source service, hit rates, latencies).
    pub stats: MemoryStats,
    /// The geometry that was simulated.
    pub config: DramConfig,
    /// Cycles simulated.
    pub horizon: u64,
    /// Requests completed per source.
    pub completed: BTreeMap<SourceId, u64>,
    /// Forward progress per source (see
    /// [`TrafficSource::progress`](crate::traffic::TrafficSource)).
    pub progress: BTreeMap<SourceId, u64>,
    /// Post-warmup measurement window (equals the whole run when no warmup
    /// was requested).
    pub measured: MeasureWindow,
    /// Epoch time-series, when a recorder was attached before the run.
    pub telemetry: Option<TelemetryReport>,
    /// Protocol conformance report, when the sanitizer was enabled before
    /// the run (see [`DramSystem::enable_conformance`]).
    pub conformance: Option<ConformanceReport>,
}

/// Per-source counts accumulated after the warmup cut-off.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasureWindow {
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Lines of forward progress per source within the window.
    pub progress: BTreeMap<SourceId, u64>,
    /// Bytes served per source within the window.
    pub bytes: BTreeMap<SourceId, u64>,
}

impl MeasureWindow {
    /// Work rate of a source in lines per cycle within the window.
    pub fn rate(&self, source: SourceId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.progress.get(&source).copied().unwrap_or(0) as f64 / self.cycles as f64
    }

    /// Bandwidth of a source in bytes per cycle within the window.
    pub fn bytes_per_cycle(&self, source: SourceId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bytes.get(&source).copied().unwrap_or(0) as f64 / self.cycles as f64
    }
}

impl SimOutcome {
    /// Bandwidth attained by `source` in GB/s.
    pub fn source_bw_gbps(&self, source: SourceId) -> f64 {
        self.stats.source_bw_gbps(source, &self.config)
    }

    /// Aggregate effective bandwidth in GB/s.
    pub fn effective_bw_gbps(&self) -> f64 {
        self.stats.effective_bw_gbps(&self.config)
    }

    /// Effective bandwidth as % of peak (Table 3 metric).
    pub fn effective_bw_pct(&self) -> f64 {
        self.stats.effective_bw_pct(&self.config)
    }

    /// Aggregate row-buffer hit rate as % (Table 3 metric).
    pub fn row_hit_pct(&self) -> f64 {
        100.0 * self.stats.row_hit_rate()
    }

    /// Mean request latency of `source` in cycles.
    pub fn avg_latency(&self, source: SourceId) -> f64 {
        self.stats
            .per_source
            .get(&source)
            .map(|s| s.avg_latency())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::StreamTraffic;

    fn system(policy: PolicyKind) -> DramSystem {
        DramSystem::new(DramConfig::cmp_study(), policy)
    }

    #[test]
    fn standalone_stream_achieves_its_demand() {
        let mut sys = system(PolicyKind::FrFcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(30.0)
                .row_locality(0.95)
                .window(64)
                .build(),
        );
        let out = sys.run(100_000);
        let bw = out.source_bw_gbps(SourceId(0));
        assert!(
            (bw - 30.0).abs() < 2.0,
            "standalone 30 GB/s stream achieved {bw:.1} GB/s"
        );
    }

    #[test]
    fn demand_beyond_peak_saturates() {
        let mut sys = system(PolicyKind::FrFcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(200.0)
                .row_locality(0.95)
                .window(256)
                .build(),
        );
        let out = sys.run(100_000);
        let bw = out.source_bw_gbps(SourceId(0));
        assert!(bw < 102.4, "cannot exceed peak");
        assert!(bw > 70.0, "should get most of peak, got {bw:.1}");
    }

    #[test]
    fn two_streams_share_bandwidth() {
        let mut sys = system(PolicyKind::FrFcfs);
        for s in 0..2 {
            sys.add_generator(
                StreamTraffic::builder(SourceId(s))
                    .demand_gbps(80.0)
                    .row_locality(0.95)
                    .window(128)
                    .build(),
            );
        }
        let out = sys.run(100_000);
        let a = out.source_bw_gbps(SourceId(0));
        let b = out.source_bw_gbps(SourceId(1));
        assert!(a + b < 102.4 + 1.0);
        assert!(a + b > 60.0, "total {:.1}", a + b);
        // FR-FCFS has no fairness control but symmetric streams should be
        // roughly balanced.
        assert!((a - b).abs() / (a + b) < 0.25, "a={a:.1} b={b:.1}");
    }

    #[test]
    fn frfcfs_beats_fcfs_on_row_hits_under_colocation() {
        let run = |policy| {
            let mut sys = system(policy);
            for s in 0..4 {
                sys.add_generator(
                    StreamTraffic::builder(SourceId(s))
                        .demand_gbps(40.0)
                        .row_locality(0.9)
                        .window(64)
                        .build(),
                );
            }
            sys.run(60_000)
        };
        let fcfs = run(PolicyKind::Fcfs);
        let fr = run(PolicyKind::FrFcfs);
        assert!(
            fr.row_hit_pct() > fcfs.row_hit_pct(),
            "FR-FCFS RBH {:.1}% should beat FCFS {:.1}%",
            fr.row_hit_pct(),
            fcfs.row_hit_pct()
        );
        assert!(fr.effective_bw_pct() > fcfs.effective_bw_pct());
    }

    #[test]
    fn atlas_protects_light_source_from_heavy_one() {
        let run = |policy| {
            let mut sys = system(policy);
            sys.add_generator(
                StreamTraffic::builder(SourceId(0))
                    .demand_gbps(15.0)
                    .row_locality(0.9)
                    .window(16)
                    .build(),
            );
            sys.add_generator(
                StreamTraffic::builder(SourceId(1))
                    .demand_gbps(150.0)
                    .row_locality(0.95)
                    .window(256)
                    .build(),
            );
            sys.run(120_000)
        };
        let atlas = run(PolicyKind::Atlas);
        let light = atlas.source_bw_gbps(SourceId(0));
        // The light source's 15 GB/s demand should be mostly satisfied
        // (less the refresh tax and its own small window's latency
        // sensitivity).
        assert!(
            light > 11.0,
            "ATLAS should nearly satisfy the light source; got {light:.1} GB/s"
        );
    }

    #[test]
    fn refresh_taxes_throughput_slightly_and_uniformly() {
        let run = |t_refi: u64| {
            let mut config = DramConfig::cmp_study();
            config.timing.t_refi = t_refi;
            let mut sys = DramSystem::new(config, PolicyKind::FrFcfs);
            for s in 0..2 {
                sys.add_generator(
                    StreamTraffic::builder(SourceId(s))
                        .demand_gbps(80.0)
                        .row_locality(0.95)
                        .window(64)
                        .build(),
                );
            }
            let out = sys.run(80_000);
            (
                out.source_bw_gbps(SourceId(0)),
                out.source_bw_gbps(SourceId(1)),
            )
        };
        let (a_off, b_off) = run(0);
        let (a_on, b_on) = run(12_480);
        let total_off = a_off + b_off;
        let total_on = a_on + b_on;
        assert!(total_on < total_off, "refresh must cost bandwidth");
        assert!(
            total_on > total_off * 0.90,
            "refresh tax too large: {total_on:.1} vs {total_off:.1}"
        );
        // Uniform: both sources lose a similar share.
        let share_off = a_off / total_off;
        let share_on = a_on / total_on;
        assert!((share_off - share_on).abs() < 0.05);
    }

    #[test]
    fn epoch_telemetry_reconciles_with_stats() {
        use pccs_telemetry::EpochRecorder;
        let mut sys = system(PolicyKind::FrFcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(40.0)
                .row_locality(0.9)
                .window(64)
                .build(),
        );
        sys.set_recorder(Box::new(EpochRecorder::new(1000)));
        let out = sys.run(20_000);
        let report = out.telemetry.as_ref().expect("recorder attached");
        assert_eq!(report.epoch_cycles, 1000);
        assert_eq!(report.total_bytes(), out.stats.total_bytes());
        assert!(report.epochs.len() <= 20);
        // Mid-run epochs should be busy on a 40 GB/s stream.
        assert!(report.epochs.iter().any(|e| e.total_bytes() > 0));
    }

    #[test]
    fn conformance_clean_on_normal_run() {
        let mut sys = system(PolicyKind::FrFcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(80.0)
                .row_locality(0.6)
                .window(128)
                .build(),
        );
        sys.enable_conformance();
        let out = sys.run(30_000);
        let report = out.conformance.as_ref().expect("sanitizer enabled");
        assert!(report.commands > 0);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn conformance_flags_broken_timing() {
        let mut config = DramConfig::cmp_study();
        // A controller scheduling with a halved tRCD emits ACT→CAS gaps the
        // reference DDR4 bin forbids.
        config.timing.t_rcd /= 2;
        let mut sys = DramSystem::new(config, PolicyKind::FrFcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(60.0)
                .row_locality(0.2)
                .window(128)
                .build(),
        );
        sys.enable_conformance_against(crate::timing::DramTiming::ddr4_3200());
        let out = sys.run(30_000);
        let report = out.conformance.as_ref().expect("sanitizer enabled");
        assert!(!report.is_clean());
        assert!(report.per_kind.contains_key("trcd"), "{}", report.summary());
    }

    #[test]
    fn runs_without_recorder_have_no_telemetry() {
        let mut sys = system(PolicyKind::Fcfs);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(10.0)
                .build(),
        );
        let out = sys.run(5_000);
        assert!(out.telemetry.is_none());
    }

    #[test]
    fn event_engine_matches_cycle_engine_on_contended_run() {
        let run = |engine: EngineKind| {
            let mut sys =
                DramSystem::with_engine(DramConfig::cmp_study(), PolicyKind::Atlas, engine);
            for s in 0..3usize {
                sys.add_generator(
                    StreamTraffic::builder(SourceId(s))
                        .demand_gbps(25.0 + 10.0 * s as f64)
                        .row_locality(0.85)
                        .write_fraction(if s == 1 { 0.3 } else { 0.0 })
                        .window(32)
                        .seed(41 + s as u64)
                        .build(),
                );
            }
            sys.run_with_warmup(10_000, 50_000)
        };
        let cycle = run(EngineKind::Cycle);
        let event = run(EngineKind::Event);
        assert_eq!(cycle.stats, event.stats, "MemoryStats diverged");
        assert_eq!(cycle.completed, event.completed);
        assert_eq!(cycle.progress, event.progress);
        assert_eq!(cycle.measured.progress, event.measured.progress);
        assert_eq!(cycle.measured.bytes, event.measured.bytes);
    }

    #[test]
    fn event_engine_matches_cycle_engine_under_light_load() {
        // Light load maximizes skip spans (idle + refresh-only stretches),
        // which is exactly where the closed-form stall accounting could
        // drift if it misclassified a span.
        let run = |engine: EngineKind| {
            let mut sys =
                DramSystem::with_engine(DramConfig::cmp_study(), PolicyKind::FrFcfs, engine);
            sys.add_generator(
                StreamTraffic::builder(SourceId(0))
                    .demand_gbps(0.8)
                    .row_locality(0.9)
                    .window(8)
                    .build(),
            );
            sys.run(200_000)
        };
        let cycle = run(EngineKind::Cycle);
        let event = run(EngineKind::Event);
        assert_eq!(cycle.stats, event.stats, "MemoryStats diverged");
        assert_eq!(cycle.completed, event.completed);
    }

    #[test]
    fn event_engine_with_recorder_still_reconciles() {
        use pccs_telemetry::EpochRecorder;
        let mut sys = DramSystem::with_engine(
            DramConfig::cmp_study(),
            PolicyKind::FrFcfs,
            EngineKind::Event,
        );
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(40.0)
                .row_locality(0.9)
                .window(64)
                .build(),
        );
        sys.set_recorder(Box::new(EpochRecorder::new(1000)));
        let out = sys.run(20_000);
        let report = out.telemetry.as_ref().expect("recorder attached");
        assert_eq!(report.total_bytes(), out.stats.total_bytes());
    }

    #[test]
    fn outcome_reports_completed_counts() {
        let mut sys = system(PolicyKind::Sms);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(20.0)
                .build(),
        );
        let out = sys.run(20_000);
        assert!(out.completed[&SourceId(0)] > 0);
        assert_eq!(out.horizon, 20_000);
    }
}
