//! Bank state machine.
//!
//! Each bank tracks its open row and the cycle until which it is busy with
//! an in-flight precharge/activate/access sequence. The controller model
//! collapses the command sequence for one request into a single service
//! window computed from `DramTiming` (see [`crate::timing`]); this is
//! the standard "bank-state" fidelity level used by fast DRAM simulators.

use crate::request::ReqKind;
use crate::timing::{DramTiming, RowOutcome};
use serde::{Deserialize, Serialize};

/// The state of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Bank {
    /// The currently open row, if any (open-page policy).
    open_row: Option<u64>,
    /// Cycle at which the bank can accept the next request.
    ready_at: u64,
    /// Cycle at which the currently open row may be precharged (tRAS).
    ras_done_at: u64,
    /// Cycle at which a READ may next issue (write-to-read turnaround,
    /// tWTR after the last write burst to this bank).
    read_ready_at: u64,
    /// Column accesses served from the currently open row.
    hits_since_open: u64,
}

/// The outcome of issuing a request to a bank.
///
/// Besides the row-buffer outcome and data timing, the issue reports the
/// cycle of every implied DRAM command (the controller collapses the
/// PRE/ACT/CAS sequence into one service window), so observers such as the
/// protocol conformance sanitizer can reconstruct the command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankIssue {
    /// Row-buffer outcome the request observed.
    pub outcome: RowOutcome,
    /// Cycle at which the first data beat may appear on the bus.
    pub data_ready: u64,
    /// Cycle of the implied PRECHARGE (row conflicts only).
    pub pre_at: Option<u64>,
    /// Cycle of the implied ACTIVATE (misses and conflicts).
    pub act_at: Option<u64>,
    /// Cycle of the column (RD/WR) command.
    pub cas_at: u64,
}

impl Bank {
    /// Creates a precharged, idle bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// The row currently held in the row buffer.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Column accesses served from the currently open row; the controller
    /// uses this to bound how long pending row hits may shield the row from
    /// closure (starvation control).
    pub fn hits_since_open(&self) -> u64 {
        self.hits_since_open
    }

    /// Whether the bank can accept a request at `cycle`.
    pub fn is_ready(&self, cycle: u64) -> bool {
        self.ready_at <= cycle
    }

    /// Cycle at which the bank can accept the next request. The event
    /// engine uses this as a wake-up breakpoint: a queued request blocked
    /// only on bank readiness cannot become schedulable before this cycle.
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }

    /// Cycle at which a READ may next issue to this bank (tWTR turnaround
    /// after the last write burst). Wake-up breakpoint for queued reads.
    pub fn read_ready_at(&self) -> u64 {
        self.read_ready_at
    }

    /// Cycle at which the currently open row may be precharged (tRAS of
    /// the last activate). Wake-up breakpoint for row-conflict requests,
    /// whose implied PRE is pinned to `max(cycle, ras_done_at)`.
    pub fn ras_done_at(&self) -> u64 {
        self.ras_done_at
    }

    /// Whether the bank can accept a request of `kind` at `cycle`. Reads
    /// additionally respect the write-to-read turnaround (tWTR).
    pub fn is_ready_for(&self, kind: ReqKind, cycle: u64) -> bool {
        self.is_ready(cycle) && (kind != ReqKind::Read || self.read_ready_at <= cycle)
    }

    /// The earliest cycle the implied ACTIVATE of a request for `row`
    /// issued at `cycle` could appear on the command bus, or `None` for a
    /// row hit. Used by the controller to pace activates (tRRD / tFAW)
    /// without mutating bank state.
    pub fn prospective_act_at(&self, row: u64, cycle: u64, timing: &DramTiming) -> Option<u64> {
        match self.probe(row) {
            RowOutcome::Hit => None,
            RowOutcome::Miss => Some(cycle),
            RowOutcome::Conflict => Some(cycle.max(self.ras_done_at) + timing.t_rp),
        }
    }

    /// What row-buffer outcome a request for `row` would observe now.
    pub fn probe(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Issues a request to `row` at `cycle`, updating bank state and
    /// returning when its data is ready.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not ready at `cycle`; callers must check
    /// [`Bank::is_ready`] first.
    pub fn issue(
        &mut self,
        row: u64,
        kind: ReqKind,
        cycle: u64,
        timing: &DramTiming,
        burst_cycles: u64,
    ) -> BankIssue {
        assert!(
            self.is_ready(cycle),
            "bank busy until {} but issued at {}",
            self.ready_at,
            cycle
        );
        debug_assert!(
            kind != ReqKind::Read || self.read_ready_at <= cycle,
            "read issued inside the write-to-read turnaround window"
        );
        let outcome = self.probe(row);
        // A conflicting precharge must respect tRAS of the previous activate.
        let start = match outcome {
            RowOutcome::Conflict => cycle.max(self.ras_done_at),
            _ => cycle,
        };
        let data_ready = start + timing.access_latency(outcome);
        let (pre_at, act_at) = match outcome {
            RowOutcome::Hit => (None, None),
            RowOutcome::Miss => (None, Some(start)),
            RowOutcome::Conflict => (Some(start), Some(start + timing.t_rp)),
        };
        let cas_at = data_ready - timing.t_cl;
        // Column accesses pipeline: once the row is open, the bank can take
        // the next column command after tCCD (or the burst, whichever is
        // longer), not after the previous data finished transferring. The
        // data bus — serialized by the controller — is then the throughput
        // limiter, as on real parts.
        let gap = timing.t_ccd.max(burst_cycles);
        let busy_until = match outcome {
            RowOutcome::Hit => start + gap,
            RowOutcome::Miss => start + timing.t_rcd + gap,
            RowOutcome::Conflict => start + timing.t_rp + timing.t_rcd + gap,
        };
        if outcome != RowOutcome::Hit {
            // The new activate starts after any precharge completes.
            let activate_at = match outcome {
                RowOutcome::Conflict => start + timing.t_rp,
                _ => start,
            };
            self.ras_done_at = activate_at + timing.t_ras;
        }
        if kind == ReqKind::Write {
            // Write recovery delays the *precharge* of this row, not the
            // next column access: consecutive writes to an open row stream
            // at tCCD; only a subsequent row closure pays tWR, measured from
            // the end of the write burst (JEDEC).
            self.ras_done_at = self
                .ras_done_at
                .max(data_ready + burst_cycles + timing.t_wr);
            // The write-to-read turnaround starts at the end of the write
            // burst (JEDEC tWTR); same-bank writes keep streaming at tCCD.
            self.read_ready_at = self
                .read_ready_at
                .max(data_ready + burst_cycles + timing.t_wtr);
        }
        match outcome {
            RowOutcome::Hit => self.hits_since_open += 1,
            _ => self.hits_since_open = 0,
        }
        self.open_row = Some(row);
        self.ready_at = busy_until;
        BankIssue {
            outcome,
            data_ready,
            pre_at,
            act_at,
            cas_at,
        }
    }

    /// Blocks the bank (all rows closed) until `until` — used for refresh.
    pub fn refresh_until(&mut self, until: u64) {
        self.open_row = None;
        self.hits_since_open = 0;
        self.ready_at = self.ready_at.max(until);
        self.ras_done_at = self.ras_done_at.max(until);
    }

    /// The earliest cycle an all-bank refresh sequence may begin on this
    /// bank: any in-flight access must have completed and, when a row is
    /// open, its tRAS must allow the implied precharge.
    pub fn refresh_pre_at(&self, cycle: u64) -> u64 {
        let mut at = cycle.max(self.ready_at);
        if self.open_row.is_some() {
            at = at.max(self.ras_done_at);
        }
        at
    }

    /// Closes the open row (e.g. an explicit precharge by the controller).
    /// Becomes effective after `t_rp`.
    pub fn precharge(&mut self, cycle: u64, timing: &DramTiming) {
        let start = cycle.max(self.ras_done_at).max(self.ready_at);
        self.open_row = None;
        self.ready_at = start + timing.t_rp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramTiming {
        DramTiming::ddr4_3200()
    }

    #[test]
    fn fresh_bank_is_ready_and_closed() {
        let b = Bank::new();
        assert!(b.is_ready(0));
        assert_eq!(b.open_row(), None);
        assert_eq!(b.probe(5), RowOutcome::Miss);
    }

    #[test]
    fn first_access_is_miss_then_hit() {
        let t = timing();
        let mut b = Bank::new();
        let first = b.issue(5, ReqKind::Read, 0, &t, 4);
        assert_eq!(first.outcome, RowOutcome::Miss);
        assert_eq!(first.data_ready, t.t_rcd + t.t_cl);
        let ready = first.data_ready + 4;
        let second = b.issue(5, ReqKind::Read, ready, &t, 4);
        assert_eq!(second.outcome, RowOutcome::Hit);
        assert_eq!(second.data_ready, ready + t.t_cl);
    }

    #[test]
    fn different_row_is_conflict() {
        let t = timing();
        let mut b = Bank::new();
        let first = b.issue(5, ReqKind::Read, 0, &t, 4);
        let ready = first.data_ready + 4;
        let second = b.issue(9, ReqKind::Read, ready, &t, 4);
        assert_eq!(second.outcome, RowOutcome::Conflict);
        assert_eq!(b.open_row(), Some(9));
    }

    #[test]
    fn conflict_respects_t_ras() {
        let t = timing();
        let mut b = Bank::new();
        // Activate at cycle 0; tRAS ends at 52. A conflicting access issued
        // as soon as the bank frees (cycle 48) must wait until 52 to
        // precharge.
        let first = b.issue(1, ReqKind::Read, 0, &t, 4);
        let free = first.data_ready + 4;
        assert!(free < t.t_ras);
        let second = b.issue(2, ReqKind::Read, free, &t, 4);
        assert_eq!(second.data_ready, t.t_ras + t.t_rp + t.t_rcd + t.t_cl);
    }

    #[test]
    fn write_recovery_delays_row_closure_not_next_column() {
        let t = timing();
        let mut b1 = Bank::new();
        let mut b2 = Bank::new();
        b1.issue(1, ReqKind::Read, 0, &t, 4);
        b2.issue(1, ReqKind::Write, 0, &t, 4);
        // The next column access is equally fast after a read or a write...
        let read_free = (0..).find(|&c| b1.is_ready(c)).unwrap();
        let write_free = (0..).find(|&c| b2.is_ready(c)).unwrap();
        assert_eq!(write_free, read_free);
        // ...but closing the row (a conflict) pays the write recovery.
        let c1 = b1.issue(2, ReqKind::Read, 200, &t, 4);
        let c2 = b2.issue(2, ReqKind::Read, 200, &t, 4);
        assert_eq!(c1.outcome, RowOutcome::Conflict);
        assert_eq!(c2.outcome, RowOutcome::Conflict);
        assert!(c2.data_ready >= c1.data_ready);
    }

    #[test]
    #[should_panic(expected = "bank busy")]
    fn issuing_to_busy_bank_panics() {
        let t = timing();
        let mut b = Bank::new();
        b.issue(1, ReqKind::Read, 0, &t, 4);
        b.issue(2, ReqKind::Read, 1, &t, 4);
    }

    #[test]
    fn precharge_closes_row() {
        let t = timing();
        let mut b = Bank::new();
        let i = b.issue(1, ReqKind::Read, 0, &t, 4);
        b.precharge(i.data_ready + 4, &t);
        assert_eq!(b.open_row(), None);
        let ready = (0..).find(|&c| b.is_ready(c)).unwrap();
        assert_eq!(b.probe(1), RowOutcome::Miss);
        assert!(ready >= t.t_ras + t.t_rp);
    }
}
