//! Physical-address-to-DRAM-coordinate mapping.
//!
//! The paper's target SoCs use channel interleaving to build a wide bus from
//! narrow channels ("The memory uses channel interleaving to construct
//! 256-bit width from 8 32-bit channels", Section 2.1), and the CMP study
//! uses "XOR-based address-to-bank mapping" (Table 1). Both are implemented
//! here.

use crate::config::DramConfig;
use crate::request::DecodedAddr;
use serde::{Deserialize, Serialize};

/// How consecutive lines are spread across channels and banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Consecutive lines rotate across channels; banks selected by the bits
    /// above the column, XOR-hashed with low row bits to spread conflicting
    /// strides (the Table 1 scheme).
    #[default]
    ChannelInterleaveXorBank,
    /// Consecutive lines rotate across channels; plain modulo bank
    /// selection (no hash). Useful as an ablation to quantify what the XOR
    /// hash buys.
    ChannelInterleavePlain,
}

impl AddressMapping {
    /// Decodes a physical byte address into channel/bank/row/column
    /// coordinates for the given geometry.
    pub fn decode(&self, addr: u64, config: &DramConfig) -> DecodedAddr {
        let line = addr / u64::from(config.line_bytes);
        let channels = config.channels as u64;
        let banks = config.banks_per_channel as u64;
        let cols = config.columns_per_row();

        let channel = (line % channels) as usize;
        let blk = line / channels;
        let column = blk % cols;
        let bank_raw = (blk / cols) % banks;
        let row = blk / (cols * banks);

        let bank = match self {
            AddressMapping::ChannelInterleaveXorBank => ((bank_raw ^ row) % banks) as usize,
            AddressMapping::ChannelInterleavePlain => bank_raw as usize,
        };

        DecodedAddr {
            channel,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::cmp_study()
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let m = AddressMapping::ChannelInterleaveXorBank;
        let c = cfg();
        let d0 = m.decode(0, &c);
        let d1 = m.decode(64, &c);
        let d2 = m.decode(128, &c);
        assert_eq!(d0.channel, 0);
        assert_eq!(d1.channel, 1);
        assert_eq!(d2.channel, 2);
    }

    #[test]
    fn same_row_until_row_boundary() {
        let m = AddressMapping::ChannelInterleaveXorBank;
        let c = cfg();
        // Lines 0, channels.. stay in channel 0; the first columns_per_row of
        // them share bank and row.
        let stride = 64 * c.channels as u64;
        let first = m.decode(0, &c);
        let mid = m.decode(stride * (c.columns_per_row() - 1), &c);
        assert_eq!(first.row, mid.row);
        assert_eq!(first.bank, mid.bank);
        let next = m.decode(stride * c.columns_per_row(), &c);
        assert!(next.bank != first.bank || next.row != first.row);
    }

    #[test]
    fn xor_hash_stays_in_range() {
        let m = AddressMapping::ChannelInterleaveXorBank;
        let c = cfg();
        for i in 0..10_000u64 {
            let d = m.decode(i * 64 * 977, &c);
            assert!(d.channel < c.channels);
            assert!(d.bank < c.banks_per_channel);
            assert!(d.column < c.columns_per_row());
        }
    }

    #[test]
    fn plain_and_xor_agree_on_row_and_channel() {
        let xor = AddressMapping::ChannelInterleaveXorBank;
        let plain = AddressMapping::ChannelInterleavePlain;
        let c = cfg();
        for i in 0..1000u64 {
            let a = i * 64 * 131;
            let dx = xor.decode(a, &c);
            let dp = plain.decode(a, &c);
            assert_eq!(dx.channel, dp.channel);
            assert_eq!(dx.row, dp.row);
            assert_eq!(dx.column, dp.column);
        }
    }

    #[test]
    fn xor_spreads_power_of_two_row_stride() {
        // A stride that hits the same bank every time under plain mapping
        // should hit different banks under the XOR hash.
        let xor = AddressMapping::ChannelInterleaveXorBank;
        let plain = AddressMapping::ChannelInterleavePlain;
        let c = cfg();
        let row_stride = 64 * c.channels as u64 * c.columns_per_row() * c.banks_per_channel as u64;
        let plain_banks: Vec<usize> = (0..8)
            .map(|i| plain.decode(i * row_stride, &c).bank)
            .collect();
        let xor_banks: Vec<usize> = (0..8)
            .map(|i| xor.decode(i * row_stride, &c).bank)
            .collect();
        assert!(plain_banks.iter().all(|&b| b == plain_banks[0]));
        assert!(xor_banks.iter().any(|&b| b != xor_banks[0]));
    }
}
