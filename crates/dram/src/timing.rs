//! DRAM device timing parameters.
//!
//! Timings are expressed in command-clock cycles (half the data rate; e.g. a
//! DDR4-3200 part runs a 1600 MHz command clock). The controller model in
//! [`crate::controller`] composes these primitives into per-request service
//! latencies depending on the row-buffer state it finds.

use serde::{Deserialize, Serialize};

/// Timing parameters of a DRAM device, in command-clock cycles.
///
/// Only the parameters the bank-state model consumes are included; refresh
/// and power-down states are out of scope for the contention study (they
/// affect all sources equally and do not change relative slowdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Row-to-column delay: cycles from ACTIVATE until a column command.
    pub t_rcd: u64,
    /// Row precharge: cycles to close an open row.
    pub t_rp: u64,
    /// CAS latency: cycles from READ command to first data beat.
    pub t_cl: u64,
    /// Minimum time a row must stay open after ACTIVATE.
    pub t_ras: u64,
    /// Write recovery time added to bank occupancy after a write burst.
    pub t_wr: u64,
    /// Column-to-column delay between bursts to the same bank group
    /// (modelled as a uniform minimum gap between column commands).
    pub t_ccd: u64,
    /// Average refresh interval: one all-bank refresh is issued per
    /// channel every `t_refi` cycles (0 disables refresh).
    pub t_refi: u64,
    /// Refresh cycle time: how long an all-bank refresh blocks the banks.
    pub t_rfc: u64,
    /// Activate-to-activate delay between banks in *different* bank groups
    /// of the same rank (JEDEC tRRD_S; 0 disables the constraint).
    pub t_rrd_s: u64,
    /// Activate-to-activate delay between banks in the *same* bank group
    /// (JEDEC tRRD_L; devices without bank groups use `t_rrd_l == t_rrd_s`).
    pub t_rrd_l: u64,
    /// Four-activate window: any sliding window of `t_faw` cycles may
    /// contain at most four ACTIVATEs per rank (0 disables the constraint).
    pub t_faw: u64,
    /// Write-to-read turnaround: cycles from the end of a write burst until
    /// a READ command may issue to the same bank (JEDEC tWTR).
    pub t_wtr: u64,
}

impl DramTiming {
    /// DDR4-3200 timing (22-22-22, command clock 1600 MHz), matching the
    /// "DDR4-3200 timing parameter" row of Table 1 in the paper.
    pub fn ddr4_3200() -> Self {
        Self {
            t_rcd: 22,
            t_rp: 22,
            t_cl: 22,
            t_ras: 52,
            t_wr: 24,
            t_ccd: 8,
            t_refi: 12_480, // 7.8 us at the 1600 MHz command clock
            t_rfc: 560,     // ~350 ns
            t_rrd_s: 4,     // max(4 nCK, 2.5 ns)
            t_rrd_l: 8,     // 4.9 ns
            t_faw: 34,      // 21 ns
            t_wtr: 12,      // tWTR_L, 7.5 ns
        }
    }

    /// LPDDR4X-4266-class timing (command clock 2133 MHz). Latencies are
    /// higher in cycles than DDR4 because the clock is faster; values follow
    /// JEDEC LPDDR4X speed-bin tables rounded to even cycles.
    pub fn lpddr4x_4266() -> Self {
        Self {
            t_rcd: 39,
            t_rp: 42,
            t_cl: 40,
            t_ras: 90,
            t_wr: 42,
            t_ccd: 8,
            t_refi: 8_320, // 3.9 us at 2133 MHz (per-bank refresh averaged)
            t_rfc: 380,    // ~180 ns LPDDR4 per-bank RFCpb aggregated
            t_rrd_s: 16,   // 7.5 ns; LPDDR4 has no bank groups, so S == L
            t_rrd_l: 16,
            t_faw: 86, // 40 ns
            t_wtr: 22, // 10 ns
        }
    }

    /// The latency, in cycles, from scheduling a request to its first data
    /// beat given the row-buffer outcome.
    pub fn access_latency(&self, outcome: RowOutcome) -> u64 {
        match outcome {
            RowOutcome::Hit => self.t_cl,
            RowOutcome::Miss => self.t_rcd + self.t_cl,
            RowOutcome::Conflict => self.t_rp + self.t_rcd + self.t_cl,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

/// The row-buffer state a request finds when it is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The target row is already open: column access only.
    Hit,
    /// The bank is precharged (no open row): activate then access.
    Miss,
    /// A different row is open: precharge, activate, then access.
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_is_fastest_conflict_is_slowest() {
        let t = DramTiming::ddr4_3200();
        let hit = t.access_latency(RowOutcome::Hit);
        let miss = t.access_latency(RowOutcome::Miss);
        let conflict = t.access_latency(RowOutcome::Conflict);
        assert!(hit < miss);
        assert!(miss < conflict);
    }

    #[test]
    fn ddr4_matches_speed_bin() {
        let t = DramTiming::ddr4_3200();
        assert_eq!(t.t_cl, 22);
        assert_eq!(t.access_latency(RowOutcome::Conflict), 66);
    }

    #[test]
    fn refresh_parameters_are_sane() {
        for t in [DramTiming::ddr4_3200(), DramTiming::lpddr4x_4266()] {
            assert!(t.t_refi > 10 * t.t_rfc, "refresh overhead must be small");
        }
    }

    #[test]
    fn activate_pacing_parameters_are_ordered() {
        for t in [DramTiming::ddr4_3200(), DramTiming::lpddr4x_4266()] {
            assert!(t.t_rrd_s <= t.t_rrd_l, "same-group ACT spacing is wider");
            // Four back-to-back ACTs at tRRD_S each must not already
            // satisfy the four-activate window, or tFAW would be inert.
            assert!(t.t_faw > 3 * t.t_rrd_s, "tFAW must bite beyond tRRD");
        }
    }

    #[test]
    fn lpddr4x_has_longer_cycle_latencies() {
        let ddr4 = DramTiming::ddr4_3200();
        let lp = DramTiming::lpddr4x_4266();
        assert!(lp.t_cl > ddr4.t_cl);
        assert!(lp.t_ras > ddr4.t_ras);
    }

    #[test]
    fn default_is_ddr4() {
        assert_eq!(DramTiming::default(), DramTiming::ddr4_3200());
    }
}
