//! The memory controller: per-channel request queues, bank state, and the
//! pluggable scheduling policy.
//!
//! Modelling notes (deviations from a full command-level simulator, all of
//! which preserve the contention behaviour the study measures):
//!
//! * The per-request command sequence (PRE/ACT/RD) is collapsed into one
//!   service window computed from the row-buffer outcome; tRAS is enforced
//!   on row conflicts, tWTR on reads after writes, and ACTIVATEs are paced
//!   per channel by tRRD_S/L and the four-activate window (tFAW).
//! * The channel data bus serializes transfers; a bank may overlap its next
//!   access with a queued transfer (bank-level pipelining), so sustained
//!   throughput is bus-limited exactly at the configured peak.
//! * All-bank refresh runs every tREFI with an honest PRE→REF sequence
//!   (a uniform tax on all sources, but it keeps bandwidth honest).
//!
//! The emitted command stream is JEDEC-auditable: enable the
//! [`crate::conformance`] sanitizer via
//! [`MemoryController::enable_conformance`] to replay it against reference
//! timing constraints.

use crate::bank::Bank;
use crate::config::DramConfig;
use crate::conformance::{CmdKind, CommandRecord, ConformanceChecker, ConformanceReport};
use crate::mapping::AddressMapping;
use crate::policy::{Candidate, ScheduleInput, SchedulingPolicy};
use crate::request::{DecodedAddr, MemoryRequest, ReqKind, SourceId};
use crate::stats::MemoryStats;
use crate::timing::{DramTiming, RowOutcome};
use pccs_telemetry::{Recorder, RowEvent, StallEvent, TelemetryReport};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Maximum row-hit streak an open row may serve while shielded from
/// closure by pending hits (starvation control for conflicting requests).
const ROW_STREAK_CAP: u64 = 64;

/// A request completion event delivered by
/// [`MemoryController::tick_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id of the completed request.
    pub request_id: u64,
    /// The source that issued it.
    pub source: SourceId,
    /// The cycle at which the last data beat transferred.
    pub finish: u64,
}

/// An in-flight request plus its decoded DRAM coordinates. Stored in the
/// controller-level slab; channel queues hold slot indices into it.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    req: MemoryRequest,
    decoded: DecodedAddr,
}

#[derive(Debug)]
struct ChannelState {
    /// Queued (unissued) requests, as slot indices into the controller's
    /// request slab. Position order is the arrival order modulo
    /// `swap_remove` holes — exactly what the policy's `queue_idx` sees.
    queue: Vec<u32>,
    banks: Vec<Bank>,
    /// Next cycle at which the channel may issue (data-bus rate pacing).
    next_issue_at: u64,
    /// Next cycle at which an all-bank refresh is due (u64::MAX = never).
    next_refresh_at: u64,
    /// Recent ACTIVATE command timestamps with their bank group, pruned to
    /// the tFAW/tRRD horizon; paces activates per channel.
    acts: Vec<(u64, usize)>,
}

/// Whether an ACTIVATE at `act_at` in `group` respects tRRD_S/L and tFAW
/// against the channel's recent ACT history. The exact mirror of the
/// conformance checker's replay rule, so a filtered schedule is clean by
/// construction.
fn act_is_legal(acts: &[(u64, usize)], act_at: u64, group: usize, timing: &DramTiming) -> bool {
    for &(a, g) in acts {
        let need = if g == group {
            timing.t_rrd_l
        } else {
            timing.t_rrd_s
        };
        if need > 0 && act_at.abs_diff(a) < need {
            return false;
        }
    }
    if timing.t_faw > 0 && acts.len() >= 4 {
        let mut all: Vec<u64> = acts.iter().map(|&(a, _)| a).collect();
        all.push(act_at);
        all.sort_unstable();
        for w in all.windows(5) {
            if w[4] - w[0] < timing.t_faw {
                return false;
            }
        }
    }
    true
}

/// Whether queued request `q` is schedulable on its channel at `cycle`.
///
/// This is the single source of truth for the candidate filter: the
/// per-cycle scheduler and the event engine's wake-up computation
/// ([`MemoryController::next_wake`]) must agree exactly, or skip-ahead
/// would stop being cycle-exact.
fn is_schedulable(
    q: &QueuedRequest,
    channel: &ChannelState,
    pending_hit: bool,
    shield_rows: bool,
    cycle: u64,
    config: &DramConfig,
) -> bool {
    let bank = &channel.banks[q.decoded.bank];
    if !bank.is_ready_for(q.req.kind, cycle) {
        return false;
    }
    let row_hit = bank.open_row() == Some(q.decoded.row);
    if shield_rows && !row_hit && pending_hit && bank.hits_since_open() < ROW_STREAK_CAP {
        return false;
    }
    // ACT pacing: a request whose implied ACTIVATE would violate tRRD or
    // tFAW is not schedulable this cycle.
    if let Some(act_at) = bank.prospective_act_at(q.decoded.row, cycle, &config.timing) {
        let group = config.bank_group(q.decoded.bank);
        if !act_is_legal(&channel.acts, act_at, group, &config.timing) {
            return false;
        }
    }
    true
}

/// A multi-channel memory controller with a pluggable scheduling policy.
#[derive(Debug)]
pub struct MemoryController {
    config: DramConfig,
    mapping: AddressMapping,
    policy: Box<dyn SchedulingPolicy>,
    channels: Vec<ChannelState>,
    /// Slab of in-flight queued requests; channel queues index into it, so
    /// enqueue/issue never reallocate per request in steady state.
    slab: Vec<QueuedRequest>,
    /// Free slot indices in `slab`.
    free_slots: Vec<u32>,
    /// Reusable candidate buffer for `schedule_channel` (no per-cycle
    /// allocation on the hot path).
    cand_scratch: Vec<Candidate>,
    stats: MemoryStats,
    pending_per_source: BTreeMap<SourceId, usize>,
    completions: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Optional telemetry sink; `None` costs one branch per hook site.
    recorder: Option<Box<dyn Recorder>>,
    /// Optional protocol conformance observer; `None` costs one branch per
    /// issued request.
    conformance: Option<ConformanceChecker>,
    /// First cycle not yet executed via the [`crate::engine::MemoryEngine`]
    /// impl (the legacy `tick_into` path keeps its own caller-side cursor).
    advanced_to: u64,
}

impl MemoryController {
    /// Creates a controller for the given memory geometry and policy.
    pub fn new(config: DramConfig, policy: Box<dyn SchedulingPolicy>) -> Self {
        Self::with_mapping(config, policy, AddressMapping::default())
    }

    /// Creates a controller with an explicit address mapping (for the
    /// mapping ablation).
    pub fn with_mapping(
        config: DramConfig,
        policy: Box<dyn SchedulingPolicy>,
        mapping: AddressMapping,
    ) -> Self {
        let channels = (0..config.channels)
            .map(|_| ChannelState {
                queue: Vec::with_capacity(config.queue_capacity),
                banks: (0..config.banks_per_channel).map(|_| Bank::new()).collect(),
                next_issue_at: 0,
                next_refresh_at: if config.timing.t_refi == 0 {
                    u64::MAX
                } else {
                    config.timing.t_refi
                },
                acts: Vec::new(),
            })
            .collect();
        assert!(
            config.banks_per_channel <= 128,
            "unsupported geometry: more than 128 banks per channel"
        );
        let slab_capacity = config.queue_capacity * config.channels;
        Self {
            config,
            mapping,
            policy,
            channels,
            slab: Vec::with_capacity(slab_capacity),
            free_slots: Vec::new(),
            cand_scratch: Vec::new(),
            stats: MemoryStats::new(),
            pending_per_source: BTreeMap::new(),
            completions: BinaryHeap::new(),
            recorder: None,
            conformance: None,
            advanced_to: 0,
        }
    }

    /// First cycle not yet executed by the engine layer.
    pub(crate) fn advanced_to(&self) -> u64 {
        self.advanced_to
    }

    /// Records how far the engine layer has executed.
    pub(crate) fn set_advanced_to(&mut self, cycle: u64) {
        self.advanced_to = cycle;
    }

    /// Attaches the protocol conformance sanitizer, validating the emitted
    /// command stream against `reference` timing (usually the same values
    /// the controller schedules with; pass a known-good timing set to audit
    /// a deliberately broken configuration). Costs one small record per
    /// DRAM command, so it is opt-in.
    pub fn enable_conformance(&mut self, reference: DramTiming) {
        self.conformance = Some(ConformanceChecker::with_reference(&self.config, reference));
    }

    /// Replays the observed command stream and returns the conformance
    /// report, or `None` when the sanitizer was never enabled.
    pub fn conformance_report(&self) -> Option<ConformanceReport> {
        self.conformance.as_ref().map(ConformanceChecker::finish)
    }

    /// Attaches a telemetry recorder that will receive per-cycle queue
    /// depth, per-serve, and scheduler-stall events.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Flushes the attached recorder at `cycle` and returns its report,
    /// if it produces one.
    pub fn take_report(&mut self, cycle: u64) -> Option<TelemetryReport> {
        let r = self.recorder.as_mut()?;
        r.finish(cycle);
        r.report()
    }

    /// The memory geometry this controller drives.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The active scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Takes the accumulated statistics, leaving empty ones behind. The
    /// engine layer uses this because trait objects cannot consume `self`.
    pub fn take_stats(&mut self) -> MemoryStats {
        std::mem::replace(&mut self.stats, MemoryStats::new())
    }

    /// Number of queued (unissued) requests across all channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.queue.len()).sum()
    }

    /// Number of queued requests for one source.
    pub fn pending_for(&self, source: SourceId) -> usize {
        self.pending_per_source.get(&source).copied().unwrap_or(0)
    }

    /// Attempts to enqueue a request; returns it back if the target
    /// channel's queue is full (back-pressure).
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the channel queue has no room; the caller
    /// should retry on a later cycle.
    pub fn try_enqueue(&mut self, req: MemoryRequest) -> Result<(), MemoryRequest> {
        let decoded = self.mapping.decode(req.addr, &self.config);
        let channel = &mut self.channels[decoded.channel];
        if channel.queue.len() >= self.config.queue_capacity {
            self.stats.source_mut(req.source).rejected += 1;
            return Err(req);
        }
        self.stats.source_mut(req.source).enqueued += 1;
        *self.pending_per_source.entry(req.source).or_insert(0) += 1;
        self.policy.on_enqueue(req.source);
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slab[slot as usize] = QueuedRequest { req, decoded };
                slot
            }
            None => {
                self.slab.push(QueuedRequest { req, decoded });
                (self.slab.len() - 1) as u32
            }
        };
        channel.queue.push(slot);
        let depth = channel.queue.len() as u64;
        if depth > self.stats.scheduler.queue_hwm {
            self.stats.scheduler.queue_hwm = depth;
        }
        Ok(())
    }

    /// Advances the controller by one cycle: lets the policy pick at most
    /// one request per channel, updates bank/bus state, and appends the
    /// completions whose data finished transferring at or before `cycle`
    /// to `out` (the buffer is not cleared, so callers can reuse one
    /// allocation across the whole run).
    pub fn tick_into(&mut self, cycle: u64, out: &mut Vec<Completion>) {
        self.step(cycle);
        self.drain_up_to(cycle, out);
    }

    /// One cycle of scheduling work without draining completions (the
    /// engine layer drains separately so both engines share one shape).
    pub(crate) fn step(&mut self, cycle: u64) {
        self.policy.on_cycle(cycle);
        self.stats.elapsed_cycles = self.stats.elapsed_cycles.max(cycle + 1);
        if self.recorder.is_some() {
            let depth = self.pending();
            if let Some(r) = self.recorder.as_mut() {
                r.on_tick(cycle, depth);
            }
        }

        for ch_idx in 0..self.channels.len() {
            self.schedule_channel(ch_idx, cycle);
        }
    }

    /// Appends all completions with `finish <= cycle` to `out`, in
    /// (finish, id, source) order.
    pub(crate) fn drain_up_to(&mut self, cycle: u64, out: &mut Vec<Completion>) {
        while let Some(&Reverse((finish, id, source))) = self.completions.peek() {
            if finish > cycle {
                break;
            }
            self.completions.pop();
            out.push(Completion {
                request_id: id,
                source: SourceId(source),
                finish,
            });
        }
    }

    /// The finish cycle of the earliest buffered completion, if any.
    pub(crate) fn next_completion_at(&self) -> Option<u64> {
        self.completions
            .peek()
            .map(|&Reverse((finish, _, _))| finish)
    }

    /// Row-hit shielding precondition: a bitmask of banks that still have
    /// queued row hits for their open row. Shared by the scheduler and
    /// `next_wake` so both see the identical shield state.
    fn pending_hit_mask(&self, channel: &ChannelState) -> u128 {
        let mut mask = 0u128;
        for &slot in &channel.queue {
            let q = &self.slab[slot as usize];
            if channel.banks[q.decoded.bank].open_row() == Some(q.decoded.row) {
                mask |= 1 << q.decoded.bank;
            }
        }
        mask
    }

    /// The earliest cycle `>= from` at which this controller might do
    /// anything other than accumulate uniform stall cycles: issue a
    /// request, run a refresh, unblock the data bus, hit a policy
    /// epoch/quantum boundary, or see a queued request newly become
    /// schedulable (bank timing expiry, tRRD/tFAW window expiry, tRAS
    /// release). The event engine executes every cycle this returns and
    /// skips the span in between; returning a cycle that is *too early*
    /// only costs speed, returning one that is too late would break
    /// cycle-exactness, so every bound below is conservative.
    pub(crate) fn next_wake(&self, from: u64) -> u64 {
        if self.recorder.is_some() {
            // Telemetry recorders sample queue depth per cycle; degrade to
            // cycle-exact stepping rather than distort epoch series.
            return from;
        }
        let timing = &self.config.timing;
        let mut wake = self.policy.next_wakeup().max(from);
        for channel in &self.channels {
            if channel.next_refresh_at != u64::MAX {
                wake = wake.min(channel.next_refresh_at.max(from));
            }
            if channel.queue.is_empty() {
                continue;
            }
            if from < channel.next_issue_at {
                // Bus-blocked until next_issue_at; nothing can issue
                // earlier, and the stall classification is uniform.
                wake = wake.min(channel.next_issue_at);
                continue;
            }
            let shield_rows = self.policy.respects_open_rows();
            let pending_hits = if shield_rows {
                self.pending_hit_mask(channel)
            } else {
                0
            };
            let schedulable = channel.queue.iter().any(|&slot| {
                let q = &self.slab[slot as usize];
                let pending_hit = pending_hits >> q.decoded.bank & 1 != 0;
                is_schedulable(q, channel, pending_hit, shield_rows, from, &self.config)
            });
            if schedulable {
                return from;
            }
            // No candidate at `from`: collect every cycle at which a
            // queued request's schedulability predicate could flip from
            // false to true. Bank/row/shield state is frozen until the
            // next issue or refresh (both of which are themselves wake
            // points), so the thresholds below are a complete superset.
            let mut best = u64::MAX;
            let consider = |c: u64, best: &mut u64| {
                if c > from && c < *best {
                    *best = c;
                }
            };
            for &slot in &channel.queue {
                let q = &self.slab[slot as usize];
                let bank = &channel.banks[q.decoded.bank];
                consider(bank.ready_at(), &mut best);
                if q.req.kind == ReqKind::Read {
                    consider(bank.read_ready_at(), &mut best);
                }
                match bank.probe(q.decoded.row) {
                    RowOutcome::Hit => {}
                    RowOutcome::Miss => {
                        // Implied ACT at the issue cycle itself: tRRD/tFAW
                        // legality flips when the history entries age out.
                        for &(a, _) in &channel.acts {
                            consider(a + timing.t_rrd_s, &mut best);
                            consider(a + timing.t_rrd_l, &mut best);
                            consider(a + timing.t_faw, &mut best);
                        }
                    }
                    RowOutcome::Conflict => {
                        // Implied ACT at max(cycle, ras_done_at) + tRP:
                        // the same thresholds shifted into issue-cycle
                        // space, plus the tRAS release boundary where the
                        // ACT time starts tracking the issue cycle.
                        consider(bank.ras_done_at(), &mut best);
                        for &(a, _) in &channel.acts {
                            consider((a + timing.t_rrd_s).saturating_sub(timing.t_rp), &mut best);
                            consider((a + timing.t_rrd_l).saturating_sub(timing.t_rp), &mut best);
                            consider((a + timing.t_faw).saturating_sub(timing.t_rp), &mut best);
                        }
                    }
                }
            }
            wake = wake.min(best);
        }
        wake
    }

    /// Account for a skipped stall span `[from, to)` exactly as per-cycle
    /// ticking would have: per channel, the whole span is idle (empty
    /// queue), bus-blocked (before `next_issue_at`), or no-candidate —
    /// [`MemoryController::next_wake`] guarantees the classification
    /// cannot change inside the span.
    pub(crate) fn skip_cycles(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(
            self.recorder.is_none(),
            "skip-ahead with a telemetry recorder attached"
        );
        let span = to - from;
        let sched = &mut self.stats.scheduler;
        for channel in &self.channels {
            debug_assert!(to <= channel.next_refresh_at, "skipped over a refresh");
            if channel.queue.is_empty() {
                sched.idle += span;
            } else if from < channel.next_issue_at {
                debug_assert!(to <= channel.next_issue_at, "skipped past bus unblock");
                sched.bus_blocked += span;
            } else {
                sched.no_candidate += span;
            }
        }
        self.stats.elapsed_cycles = self.stats.elapsed_cycles.max(to);
    }

    fn schedule_channel(&mut self, ch_idx: usize, cycle: u64) {
        // The data bus is modelled as a rate limiter: at most one line may
        // *begin* service per burst window, which caps sustained channel
        // throughput at exactly the bus rate while letting transfers from
        // different banks complete out of order (a row conflict delays only
        // its own bank, not the channel pipeline).
        let burst = self.config.burst_cycles();
        // All-bank refresh: blocks every bank of the channel for tRFC. A
        // uniform tax on all sources (it cannot change *relative* speeds),
        // but it keeps effective bandwidth honest. The sequence is
        // protocol-honest: wait for in-flight accesses and tRAS, precharge
        // any open rows, then REF after tRP.
        {
            let t_rfc = self.config.timing.t_rfc;
            let t_refi = self.config.timing.t_refi;
            let t_rp = self.config.timing.t_rp;
            let channel = &mut self.channels[ch_idx];
            if cycle >= channel.next_refresh_at {
                let pre_at = channel
                    .banks
                    .iter()
                    .map(|b| b.refresh_pre_at(cycle))
                    .max()
                    .unwrap_or(cycle);
                let any_open = channel.banks.iter().any(|b| b.open_row().is_some());
                let ref_at = if any_open { pre_at + t_rp } else { pre_at };
                if let Some(c) = self.conformance.as_mut() {
                    for (bank_idx, bank) in channel.banks.iter().enumerate() {
                        if bank.open_row().is_some() {
                            c.observe(CommandRecord {
                                cycle: pre_at,
                                channel: ch_idx,
                                bank: bank_idx,
                                kind: CmdKind::Pre,
                                row: None,
                            });
                        }
                    }
                    c.observe(CommandRecord {
                        cycle: ref_at,
                        channel: ch_idx,
                        bank: 0,
                        kind: CmdKind::RefAb,
                        row: None,
                    });
                }
                for bank in &mut channel.banks {
                    bank.refresh_until(ref_at + t_rfc);
                }
                channel.next_refresh_at = channel.next_refresh_at.saturating_add(t_refi);
            }
        }
        {
            let channel = &self.channels[ch_idx];
            if channel.queue.is_empty() {
                self.stats.scheduler.idle += 1;
                if let Some(r) = self.recorder.as_mut() {
                    r.on_stall(cycle, StallEvent::Idle);
                }
                return;
            }
            if cycle < channel.next_issue_at {
                self.stats.scheduler.bus_blocked += 1;
                if let Some(r) = self.recorder.as_mut() {
                    r.on_stall(cycle, StallEvent::BusBlocked);
                }
                return;
            }
        }

        let mut candidates = std::mem::take(&mut self.cand_scratch);
        candidates.clear();
        {
            let channel = &self.channels[ch_idx];
            // Open-page awareness: while a bank still has queued row hits
            // for its open row, realistic schedulers do not close that row
            // for a conflicting request — the pending hits cost tCCD each,
            // the precharge+activate costs an order of magnitude more. A
            // per-row hit budget bounds the shielding so conflicting
            // requests cannot starve (row-hit streak cap, as in real MCs).
            let shield_rows = self.policy.respects_open_rows();
            let pending_hits = if shield_rows {
                self.pending_hit_mask(channel)
            } else {
                0
            };
            for (i, &slot) in channel.queue.iter().enumerate() {
                let q = &self.slab[slot as usize];
                let pending_hit = pending_hits >> q.decoded.bank & 1 != 0;
                if is_schedulable(q, channel, pending_hit, shield_rows, cycle, &self.config) {
                    candidates.push(Candidate {
                        queue_idx: i,
                        source: q.req.source,
                        row_hit: channel.banks[q.decoded.bank].open_row() == Some(q.decoded.row),
                        arrival: q.req.arrival,
                        bank: q.decoded.bank,
                        row: q.decoded.row,
                    });
                }
            }
        }
        if candidates.is_empty() {
            self.cand_scratch = candidates;
            self.stats.scheduler.no_candidate += 1;
            if let Some(r) = self.recorder.as_mut() {
                r.on_stall(cycle, StallEvent::NoCandidate);
            }
            return;
        }

        let chosen = {
            let input = ScheduleInput {
                cycle,
                candidates: &candidates,
                pending_per_source: &self.pending_per_source,
            };
            self.policy.choose(&input)
        };
        let queue_idx = chosen.map(|c| candidates[c].queue_idx);
        self.cand_scratch = candidates;
        let Some(queue_idx) = queue_idx else {
            return;
        };

        let channel = &mut self.channels[ch_idx];
        let slot = channel.queue.swap_remove(queue_idx);
        let q = self.slab[slot as usize];
        self.free_slots.push(slot);
        let issue = channel.banks[q.decoded.bank].issue(
            q.decoded.row,
            q.req.kind,
            cycle,
            &self.config.timing,
            burst,
        );
        let finish = issue.data_ready + burst;
        channel.next_issue_at = cycle + burst;
        if let Some(act_at) = issue.act_at {
            let horizon = self.config.timing.t_faw.max(self.config.timing.t_rrd_l);
            channel.acts.retain(|&(a, _)| a + horizon > cycle);
            channel
                .acts
                .push((act_at, self.config.bank_group(q.decoded.bank)));
        }
        if let Some(c) = self.conformance.as_mut() {
            if let Some(pre_at) = issue.pre_at {
                c.observe(CommandRecord {
                    cycle: pre_at,
                    channel: ch_idx,
                    bank: q.decoded.bank,
                    kind: CmdKind::Pre,
                    row: None,
                });
            }
            if let Some(act_at) = issue.act_at {
                c.observe(CommandRecord {
                    cycle: act_at,
                    channel: ch_idx,
                    bank: q.decoded.bank,
                    kind: CmdKind::Act,
                    row: Some(q.decoded.row),
                });
            }
            c.observe(CommandRecord {
                cycle: issue.cas_at,
                channel: ch_idx,
                bank: q.decoded.bank,
                kind: if q.req.kind == ReqKind::Write {
                    CmdKind::Wr
                } else {
                    CmdKind::Rd
                },
                row: Some(q.decoded.row),
            });
        }

        if let Some(n) = self.pending_per_source.get_mut(&q.req.source) {
            *n = n.saturating_sub(1);
        }
        self.policy.on_served(q.req.source, u64::from(q.req.bytes));
        let latency = finish.saturating_sub(q.req.arrival);
        self.stats
            .record_served(q.req.source, u64::from(q.req.bytes), issue.outcome, latency);
        self.stats.scheduler.issued += 1;
        if let Some(r) = self.recorder.as_mut() {
            r.on_stall(cycle, StallEvent::Issued);
            let row = match issue.outcome {
                RowOutcome::Hit => RowEvent::Hit,
                RowOutcome::Miss => RowEvent::Miss,
                RowOutcome::Conflict => RowEvent::Conflict,
            };
            r.on_serve(cycle, q.req.source.0, u64::from(q.req.bytes), latency, row);
        }
        self.completions
            .push(Reverse((finish, q.req.id, q.req.source.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn controller(kind: PolicyKind) -> MemoryController {
        MemoryController::new(DramConfig::cmp_study(), kind.instantiate())
    }

    fn run_until_complete(mc: &mut MemoryController, n: usize, max_cycles: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for cycle in 0..max_cycles {
            mc.tick_into(cycle, &mut done);
            if done.len() >= n {
                break;
            }
        }
        done
    }

    #[test]
    fn single_request_completes_with_miss_latency() {
        let mut mc = controller(PolicyKind::FrFcfs);
        mc.try_enqueue(MemoryRequest::read(1, SourceId(0), 0, 0))
            .unwrap();
        let done = run_until_complete(&mut mc, 1, 1000);
        assert_eq!(done.len(), 1);
        let t = &mc.config().timing;
        // tRCD + tCL + burst.
        assert_eq!(
            done[0].finish,
            t.t_rcd + t.t_cl + mc.config().burst_cycles()
        );
        assert_eq!(mc.stats().total_served(), 1);
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn sequential_stream_hits_rows() {
        let mut mc = controller(PolicyKind::FrFcfs);
        // Same channel (stride = channels * 64), same row.
        let stride = 64 * mc.config().channels as u64;
        for i in 0..16u64 {
            mc.try_enqueue(MemoryRequest::read(i, SourceId(0), i * stride, 0))
                .unwrap();
        }
        let done = run_until_complete(&mut mc, 16, 10_000);
        assert_eq!(done.len(), 16);
        let s = &mc.stats().per_source[&SourceId(0)];
        assert_eq!(s.row_misses, 1, "only the first access misses");
        assert_eq!(s.row_hits, 15);
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let mut mc = controller(PolicyKind::Fcfs);
        let cap = mc.config().queue_capacity;
        let stride = 64 * mc.config().channels as u64; // all to channel 0
        let mut accepted = 0;
        for i in 0..(cap as u64 + 10) {
            if mc
                .try_enqueue(MemoryRequest::read(i, SourceId(0), i * stride, 0))
                .is_ok()
            {
                accepted += 1;
            }
        }
        assert_eq!(accepted, cap);
        assert_eq!(mc.stats().per_source[&SourceId(0)].rejected, 10);
    }

    #[test]
    fn channels_interleave_for_sequential_addresses() {
        let mut mc = controller(PolicyKind::FrFcfs);
        for i in 0..4u64 {
            mc.try_enqueue(MemoryRequest::read(i, SourceId(0), i * 64, 0))
                .unwrap();
        }
        // All four channels can issue in the same cycle.
        mc.tick_into(0, &mut Vec::new());
        assert_eq!(mc.pending(), 0);
    }

    #[test]
    fn bus_serializes_same_channel_transfers() {
        let mut mc = controller(PolicyKind::FrFcfs);
        let stride = 64 * mc.config().channels as u64;
        for i in 0..8u64 {
            mc.try_enqueue(MemoryRequest::read(i, SourceId(0), i * stride, 0))
                .unwrap();
        }
        let done = run_until_complete(&mut mc, 8, 10_000);
        let mut finishes: Vec<u64> = done.iter().map(|c| c.finish).collect();
        finishes.sort_unstable();
        let burst = mc.config().burst_cycles();
        for w in finishes.windows(2) {
            assert!(w[1] - w[0] >= burst, "transfers overlap on the bus");
        }
    }

    #[test]
    fn pending_per_source_tracks_queue() {
        let mut mc = controller(PolicyKind::Fcfs);
        mc.try_enqueue(MemoryRequest::read(0, SourceId(3), 0, 0))
            .unwrap();
        mc.try_enqueue(MemoryRequest::read(1, SourceId(3), 64, 0))
            .unwrap();
        assert_eq!(mc.pending_for(SourceId(3)), 2);
        run_until_complete(&mut mc, 2, 1000);
        assert_eq!(mc.pending_for(SourceId(3)), 0);
    }

    #[test]
    fn all_policies_drain_a_mixed_queue() {
        for kind in PolicyKind::all() {
            let mut mc = controller(kind);
            for i in 0..64u64 {
                let src = SourceId((i % 4) as usize);
                mc.try_enqueue(MemoryRequest::read(i, src, i * 64 * 7919, 0))
                    .unwrap();
            }
            let done = run_until_complete(&mut mc, 64, 100_000);
            assert_eq!(done.len(), 64, "{kind} failed to drain");
        }
    }

    #[test]
    fn recorder_reconciles_with_aggregate_stats() {
        use pccs_telemetry::EpochRecorder;
        let mut mc = controller(PolicyKind::FrFcfs);
        mc.set_recorder(Box::new(EpochRecorder::new(64)));
        for i in 0..32u64 {
            mc.try_enqueue(MemoryRequest::read(
                i,
                SourceId((i % 2) as usize),
                i * 64 * 131,
                0,
            ))
            .unwrap();
        }
        run_until_complete(&mut mc, 32, 10_000);
        let last = mc.stats().elapsed_cycles;
        let report = mc.take_report(last).expect("epoch recorder reports");
        assert_eq!(report.total_bytes(), mc.stats().total_bytes());
        let sched = &mc.stats().scheduler;
        let issued: u64 = report.epochs.iter().map(|e| e.issued).sum();
        let idle: u64 = report.epochs.iter().map(|e| e.idle).sum();
        assert_eq!(issued, sched.issued);
        assert_eq!(idle, sched.idle);
        let hits: u64 = report.epochs.iter().map(|e| e.row_hits).sum();
        let all_hits: u64 = mc.stats().per_source.values().map(|s| s.row_hits).sum();
        assert_eq!(hits, all_hits);
        assert_eq!(report.sources(), vec![0, 1]);
    }

    #[test]
    fn stats_latency_includes_queueing() {
        let mut mc = controller(PolicyKind::Fcfs);
        let stride = 64 * mc.config().channels as u64;
        for i in 0..4u64 {
            mc.try_enqueue(MemoryRequest::read(i, SourceId(0), i * stride, 0))
                .unwrap();
        }
        run_until_complete(&mut mc, 4, 10_000);
        let s = &mc.stats().per_source[&SourceId(0)];
        // The last request waited for three predecessors.
        assert!(s.max_latency > s.avg_latency() as u64 / 2);
        assert!(s.max_latency >= 3 * mc.config().burst_cycles());
    }
}
