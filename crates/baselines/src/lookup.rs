//! Co-run lookup table (Zhu et al., IPDPS'17): predictions read directly
//! from a grid of measured co-run combinations, with nearest-neighbour
//! lookup on both axes. Maximum fidelity, maximum measurement cost — the
//! grid must be measured per application (and re-measured for any hardware
//! change).

use pccs_core::SlowdownModel;
use serde::{Deserialize, Serialize};

/// A measured `(demand, pressure) → relative speed` grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorunTable {
    demands: Vec<f64>,
    pressures: Vec<f64>,
    /// `rs[i][j]`: RS % of demand level `i` under pressure level `j`.
    rs: Vec<Vec<f64>>,
}

impl CorunTable {
    /// Wraps a measured grid.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing, or if the
    /// matrix shape does not match the axes.
    pub fn new(demands: Vec<f64>, pressures: Vec<f64>, rs: Vec<Vec<f64>>) -> Self {
        assert!(
            !demands.is_empty() && !pressures.is_empty(),
            "axes must be non-empty"
        );
        assert!(
            demands.windows(2).all(|w| w[1] > w[0]),
            "demand axis must be strictly increasing"
        );
        assert!(
            pressures.windows(2).all(|w| w[1] > w[0]),
            "pressure axis must be strictly increasing"
        );
        assert_eq!(rs.len(), demands.len(), "row count must match demand axis");
        assert!(
            rs.iter().all(|row| row.len() == pressures.len()),
            "every row must match the pressure axis"
        );
        Self {
            demands,
            pressures,
            rs,
        }
    }

    /// Total number of co-run measurements behind the table.
    pub fn measurement_count(&self) -> usize {
        self.demands.len() * self.pressures.len()
    }

    fn nearest(axis: &[f64], value: f64) -> usize {
        axis.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (**a - value).abs().total_cmp(&(**b - value).abs()))
            .map(|(i, _)| i)
            .expect("non-empty axis")
    }

    /// Nearest-neighbour lookup.
    pub fn lookup(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        let i = Self::nearest(&self.demands, demand_gbps);
        let j = Self::nearest(&self.pressures, external_gbps);
        self.rs[i][j]
    }
}

impl SlowdownModel for CorunTable {
    fn name(&self) -> &'static str {
        "Co-run table"
    }

    fn relative_speed_pct(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        self.lookup(demand_gbps, external_gbps).clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CorunTable {
        CorunTable::new(
            vec![20.0, 60.0],
            vec![10.0, 50.0, 90.0],
            vec![vec![100.0, 95.0, 92.0], vec![98.0, 80.0, 65.0]],
        )
    }

    #[test]
    fn exact_lookup() {
        let t = table();
        assert_eq!(t.lookup(60.0, 50.0), 80.0);
        assert_eq!(t.measurement_count(), 6);
    }

    #[test]
    fn nearest_neighbour_rounds() {
        let t = table();
        assert_eq!(t.lookup(35.0, 10.0), 100.0); // nearer 20 than 60
        assert_eq!(t.lookup(45.0, 75.0), 65.0); // nearer 60, nearer 90
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let t = table();
        assert_eq!(t.lookup(500.0, 500.0), 65.0);
        assert_eq!(t.lookup(0.0, 0.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn rejects_shape_mismatch() {
        CorunTable::new(vec![1.0, 2.0], vec![1.0], vec![vec![90.0]]);
    }
}
