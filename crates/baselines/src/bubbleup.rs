//! Bubble-up (Mars et al., MICRO'11): an empirically measured per-application
//! sensitivity curve.
//!
//! The original methodology co-runs the application of interest against a
//! tunable "bubble" of memory pressure, recording its performance at each
//! bubble size. Predictions then interpolate the curve at the expected
//! pressure. Accuracy is high, but *each application* needs its own set of
//! co-run measurements — the post-silicon-only property the PCCS paper
//! contrasts against.

use pccs_core::SlowdownModel;
use serde::{Deserialize, Serialize};

/// A per-application sensitivity curve measured with a pressure "bubble".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BubbleUp {
    name: String,
    /// `(external pressure GB/s, relative speed %)`, ascending pressure.
    curve: Vec<(f64, f64)>,
}

impl BubbleUp {
    /// Wraps a measured sensitivity curve.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, pressures are not
    /// strictly increasing, or a relative speed is outside `(0, 102]`.
    pub fn from_curve(name: impl Into<String>, curve: Vec<(f64, f64)>) -> Self {
        assert!(
            curve.len() >= 2,
            "a sensitivity curve needs at least two points"
        );
        assert!(
            curve.windows(2).all(|w| w[1].0 > w[0].0),
            "pressure axis must be strictly increasing"
        );
        assert!(
            curve.iter().all(|&(_, rs)| rs > 0.0 && rs <= 102.0),
            "relative speeds must be in (0, 102]"
        );
        Self {
            name: name.into(),
            curve,
        }
    }

    /// The application this curve belongs to.
    pub fn application(&self) -> &str {
        &self.name
    }

    /// Number of co-run measurements the curve cost.
    pub fn measurement_count(&self) -> usize {
        self.curve.len()
    }

    /// Piecewise-linear interpolation of the curve at `external_gbps`,
    /// clamped to the measured range.
    pub fn interpolate(&self, external_gbps: f64) -> f64 {
        let first = self.curve[0];
        let last = *self.curve.last().expect("non-empty");
        if external_gbps <= first.0 {
            return first.1;
        }
        if external_gbps >= last.0 {
            return last.1;
        }
        for w in self.curve.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if external_gbps <= x1 {
                let t = (external_gbps - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        last.1
    }
}

impl SlowdownModel for BubbleUp {
    fn name(&self) -> &'static str {
        "Bubble-up"
    }

    /// The curve already encodes the application, so the demand argument is
    /// ignored — Bubble-up is application-specific by construction.
    fn relative_speed_pct(&self, _demand_gbps: f64, external_gbps: f64) -> f64 {
        self.interpolate(external_gbps).clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> BubbleUp {
        BubbleUp::from_curve(
            "streamcluster",
            vec![(10.0, 100.0), (50.0, 80.0), (90.0, 60.0)],
        )
    }

    #[test]
    fn interpolates_between_points() {
        let b = curve();
        assert!((b.interpolate(30.0) - 90.0).abs() < 1e-9);
        assert!((b.interpolate(70.0) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_measured_range() {
        let b = curve();
        assert_eq!(b.interpolate(0.0), 100.0);
        assert_eq!(b.interpolate(500.0), 60.0);
    }

    #[test]
    fn exact_points_reproduce() {
        let b = curve();
        assert_eq!(b.interpolate(50.0), 80.0);
        assert_eq!(b.measurement_count(), 3);
        assert_eq!(b.application(), "streamcluster");
    }

    #[test]
    fn implements_slowdown_model() {
        let b = curve();
        assert!((b.relative_speed_pct(999.0, 50.0) - 80.0).abs() < 1e-9);
        assert_eq!(b.name(), "Bubble-up");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_curve() {
        BubbleUp::from_curve("x", vec![(10.0, 90.0), (5.0, 95.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        BubbleUp::from_curve("x", vec![(10.0, 90.0)]);
    }
}
