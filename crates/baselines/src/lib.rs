//! Related-work slowdown models, reproducing the approaches the paper
//! compares against in its Table 10:
//!
//! | Model | Interference model | Needs per-app co-runs? |
//! |---|---|---|
//! | [`BubbleUp`] | empirical per-app sensitivity curve | yes (one curve per app) |
//! | [`CorunTable`] | lookup table of measured co-runs | yes (a full grid per app pair) |
//! | [`EspRegression`] | linear regression on co-run samples | yes (training set) |
//! | `GablesModel` (in `pccs-gables`) | analytical roofline share | no |
//! | `PccsModel` (in `pccs-core`) | empirical + analytical, processor-centric | **no** |
//!
//! The point the paper makes — and that the Table 10 experiment in
//! `pccs-experiments` quantifies — is the *measurement cost* axis: the
//! first three models predict well but require co-run measurements of each
//! application of interest, which is exactly what is impossible at SoC
//! design time for future workloads. PCCS needs only calibrator runs.

/// Bubble-up (Mars et al., MICRO'11): an empirically measured per-application.
pub mod bubbleup;
/// ESP-style interference prediction (Mishra et al., ICAC'17): a black-box.
pub mod esp;
/// Co-run lookup table (Zhu et al., IPDPS'17): predictions read directly.
pub mod lookup;

pub use bubbleup::BubbleUp;
pub use esp::EspRegression;
pub use lookup::CorunTable;
