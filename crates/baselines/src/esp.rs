//! ESP-style interference prediction (Mishra et al., ICAC'17): a black-box
//! regression trained on measured co-run samples.
//!
//! The original trains per-application regressors over rich feature sets;
//! this reproduction uses ordinary least squares over the features the
//! slowdown problem exposes — the kernel's demand `x`, the pressure `y`,
//! their product and the total `x + y` — which is enough to reproduce the
//! paper's qualitative placement: better than a naive analytical model,
//! worse than curve-per-app empirical ones, and still requiring co-run
//! training data.

use pccs_core::SlowdownModel;
use serde::{Deserialize, Serialize};

/// One training sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorunSample {
    /// Kernel standalone demand (GB/s).
    pub demand_gbps: f64,
    /// Total external demand (GB/s).
    pub external_gbps: f64,
    /// Measured relative speed (%).
    pub rs_pct: f64,
}

/// A least-squares regression over co-run samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EspRegression {
    /// Coefficients for `[1, x, y, x·y, x+y]`.
    coeffs: [f64; 5],
    samples: usize,
}

fn features(x: f64, y: f64) -> [f64; 5] {
    [1.0, x, y, x * y * 1e-2, x + y]
}

impl EspRegression {
    /// Fits the regression to training samples via the normal equations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 5 samples are provided (underdetermined) or the
    /// normal matrix is singular (degenerate training set, e.g. all samples
    /// identical).
    pub fn fit(samples: &[CorunSample]) -> Self {
        assert!(
            samples.len() >= 5,
            "need at least 5 samples to fit 5 coefficients"
        );
        const N: usize = 5;
        let mut ata = [[0.0f64; N]; N];
        let mut atb = [0.0f64; N];
        for s in samples {
            let f = features(s.demand_gbps, s.external_gbps);
            for i in 0..N {
                for j in 0..N {
                    ata[i][j] += f[i] * f[j];
                }
                atb[i] += f[i] * s.rs_pct;
            }
        }
        // Ridge stabilization keeps nearly collinear features solvable.
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-6;
        }
        let coeffs = solve5(ata, atb).expect("normal matrix must be non-singular");
        Self {
            coeffs,
            samples: samples.len(),
        }
    }

    /// Number of co-run measurements used for training.
    pub fn measurement_count(&self) -> usize {
        self.samples
    }

    /// Raw (unclamped) regression output.
    pub fn raw_predict(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        let f = features(demand_gbps, external_gbps);
        f.iter().zip(&self.coeffs).map(|(a, b)| a * b).sum()
    }
}

impl SlowdownModel for EspRegression {
    fn name(&self) -> &'static str {
        "ESP regression"
    }

    fn relative_speed_pct(&self, demand_gbps: f64, external_gbps: f64) -> f64 {
        self.raw_predict(demand_gbps, external_gbps)
            .clamp(0.0, 100.0)
    }
}

/// Gaussian elimination with partial pivoting for the 5×5 normal system.
fn solve5(mut a: [[f64; 5]; 5], mut b: [f64; 5]) -> Option<[f64; 5]> {
    const N: usize = 5;
    for col in 0..N {
        let pivot = (col..N).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..N {
            let k = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (c, cell) in lower[0].iter_mut().enumerate().skip(col) {
                *cell -= k * pivot_row[c];
            }
            b[row] -= k * b[col];
        }
    }
    let mut x = [0.0f64; N];
    for row in (0..N).rev() {
        let mut acc = b[row];
        for c in (row + 1)..N {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_world(x: f64, y: f64) -> f64 {
        (100.0 - 0.2 * x - 0.3 * y).clamp(0.0, 100.0)
    }

    fn training() -> Vec<CorunSample> {
        let mut v = Vec::new();
        for i in 1..=6 {
            for j in 1..=6 {
                let x = i as f64 * 15.0;
                let y = j as f64 * 15.0;
                v.push(CorunSample {
                    demand_gbps: x,
                    external_gbps: y,
                    rs_pct: linear_world(x, y),
                });
            }
        }
        v
    }

    #[test]
    fn fits_a_linear_response_closely() {
        let model = EspRegression::fit(&training());
        for (x, y) in [(30.0, 30.0), (60.0, 45.0), (75.0, 90.0)] {
            let err = (model.relative_speed_pct(x, y) - linear_world(x, y)).abs();
            assert!(err < 2.0, "err {err:.2} at ({x},{y})");
        }
        assert_eq!(model.measurement_count(), 36);
    }

    #[test]
    fn prediction_is_clamped() {
        let model = EspRegression::fit(&training());
        let rs = model.relative_speed_pct(400.0, 400.0);
        assert!((0.0..=100.0).contains(&rs));
    }

    #[test]
    #[should_panic(expected = "at least 5")]
    fn rejects_tiny_training_sets() {
        EspRegression::fit(&training()[..3]);
    }

    #[test]
    fn solver_handles_permutations() {
        // A system needing pivoting.
        let a = [
            [0.0, 1.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 3.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 4.0],
        ];
        let b = [2.0, 1.0, 4.0, 9.0, 16.0];
        let x = solve5(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
        assert!((x[2] - 2.0).abs() < 1e-9);
        assert!((x[3] - 3.0).abs() < 1e-9);
        assert!((x[4] - 4.0).abs() < 1e-9);
    }
}
