//! Worker-count invariance of the sweep engine: the same experiment run
//! serially and on four worker threads must serialize to byte-identical
//! JSON. Every simulation is seeded per cell, the runner collects cell
//! outputs in enumeration order, and merge never looks at completion
//! order — so `--jobs N` can only change wall-clock time, never results.

use pccs_experiments::context::{Context, Quality};
use pccs_experiments::{fig2, oblivious};

/// Serializes one full experiment pass (two profile-cache-heavy
/// experiments) at the given worker count.
fn run_at(jobs: usize) -> (String, String) {
    let mut ctx = Context::new(Quality::Quick).with_jobs(jobs);
    let o = oblivious::run(&mut ctx).expect("oblivious runs");
    let f = fig2::run(&mut ctx).expect("fig2 runs");
    (
        serde_json::to_string_pretty(&o).expect("serializes"),
        serde_json::to_string_pretty(&f).expect("serializes"),
    )
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let (o1, f1) = run_at(1);
    let (o4, f4) = run_at(4);
    assert_eq!(o1, o4, "oblivious output depends on --jobs");
    assert_eq!(f1, f4, "fig2 output depends on --jobs");
}
