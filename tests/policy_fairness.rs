//! Cross-crate checks of the Section 2.3 mechanism story: fairness-aware
//! memory scheduling is what produces the flattening slowdown curves, and
//! locality-aware scheduling is what keeps effective bandwidth high.

use pccs_dram::config::DramConfig;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;

const HORIZON: u64 = 30_000;

fn two_groups(policy: PolicyKind, victim_gbps: f64, aggressor_gbps: f64) -> (f64, f64) {
    let config = DramConfig::cmp_study();
    let mut sys = DramSystem::new(config, policy);
    for s in 0..8 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(victim_gbps / 8.0)
                .row_locality(0.95)
                .window(24)
                .seed(11 + s as u64)
                .build(),
        );
    }
    for s in 8..16 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(aggressor_gbps / 8.0)
                .row_locality(0.92)
                .window(24)
                .seed(97 + s as u64)
                .build(),
        );
    }
    let out = sys.run(HORIZON);
    let victim: f64 = (0..8).map(|s| out.source_bw_gbps(SourceId(s))).sum();
    let aggressor: f64 = (8..16).map(|s| out.source_bw_gbps(SourceId(s))).sum();
    (victim, aggressor)
}

#[test]
fn fairness_policies_protect_the_light_group() {
    // A light 12 GB/s group against a saturating aggressor: fairness-aware
    // policies should deliver (nearly) the light group's demand.
    for policy in PolicyKind::fairness_aware() {
        let (victim, _) = two_groups(policy, 12.0, 150.0);
        assert!(
            victim > 8.0,
            "{policy}: light group got only {victim:.1} GB/s of its 12"
        );
    }
}

#[test]
fn frfcfs_favors_throughput_fairness_policies_split_more_evenly() {
    let (v_fr, a_fr) = two_groups(PolicyKind::FrFcfs, 40.0, 150.0);
    let (v_at, a_at) = two_groups(PolicyKind::Atlas, 40.0, 150.0);
    // ATLAS should give the moderate group at least as large a share of the
    // total as FR-FCFS does.
    let share_fr = v_fr / (v_fr + a_fr);
    let share_at = v_at / (v_at + a_at);
    assert!(
        share_at >= share_fr - 0.05,
        "ATLAS victim share {share_at:.2} vs FR-FCFS {share_fr:.2}"
    );
}

#[test]
fn external_pressure_effect_saturates_under_fairness_control() {
    // The flat tail (the paper's contention balance point): once the
    // aggressor demand is far beyond its fair share, further demand must
    // not keep eroding the victim.
    let (v_mid, _) = two_groups(PolicyKind::Atlas, 48.0, 90.0);
    let (v_high, _) = two_groups(PolicyKind::Atlas, 48.0, 160.0);
    assert!(
        v_high > v_mid * 0.82,
        "victim kept dropping past saturation: {v_mid:.1} -> {v_high:.1} GB/s"
    );
}

#[test]
fn all_policies_preserve_total_bytes_conservation() {
    for policy in PolicyKind::all() {
        let (victim, aggressor) = two_groups(policy, 40.0, 80.0);
        let total = victim + aggressor;
        assert!(
            total <= 102.4 + 1.0,
            "{policy}: total {total:.1} exceeds peak"
        );
        assert!(total > 30.0, "{policy}: implausibly low total {total:.1}");
    }
}
