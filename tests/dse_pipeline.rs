//! Design-space exploration pipeline (Section 4.3): frequency selection
//! with a slowdown model vs simulated ground truth, and the area/power
//! accounting of Section 1's headline savings.

use pccs_core::PccsModel;
use pccs_dse::cost::{area_rel, dynamic_power_rel, savings_pct};
use pccs_dse::explore::{explore_core_counts, select_core_count};
use pccs_dse::freq::{ground_truth_frequency, profile_frequencies, select_frequency};
use pccs_gables::GablesModel;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::rodinia::RodiniaBenchmark;

const HORIZON: u64 = 20_000;

#[test]
fn frequency_profile_is_monotone_in_frequency() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let kernel = RodiniaBenchmark::Streamcluster.kernel(PuKind::Gpu);
    let freqs = [400.0, 800.0, 1377.0];
    let points = profile_frequencies(&soc, gpu, &kernel, &freqs, HORIZON);
    assert_eq!(points.len(), 3);
    // Higher clock never *reduces* standalone performance.
    assert!(points[1].standalone_rate >= points[0].standalone_rate * 0.95);
    assert!(points[2].standalone_rate >= points[1].standalone_rate * 0.95);
}

#[test]
fn selection_respects_the_budget_against_ground_truth() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let kernel = RodiniaBenchmark::Streamcluster.kernel(PuKind::Gpu);
    let freqs = [500.0, 900.0, 1377.0];
    let truth = ground_truth_frequency(&soc, gpu, cpu, &kernel, &freqs, 40.0, 0.20, HORIZON);
    // The chosen frequency is one of the candidates and its measured co-run
    // performance is within the budget of the best.
    let (_, rel) = truth
        .perf_rel
        .iter()
        .find(|&&(f, _)| f == truth.chosen_mhz)
        .copied()
        .expect("chosen frequency among candidates");
    assert!(rel >= 0.8 - 1e-9);
}

#[test]
fn pccs_guided_choice_saves_power_over_gables() {
    // Use paper-magnitude models so the comparison is about model shape,
    // not calibration noise: Gables over-clocks because it sees no
    // contention below peak.
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let kernel = KernelDesc::memory_streaming("streamcluster", 22.5);
    let freqs = [500.0, 700.0, 900.0, 1100.0, 1377.0];
    let points = profile_frequencies(&soc, gpu, &kernel, &freqs, HORIZON);
    let pccs = PccsModel::xavier_gpu_paper();
    let gables = GablesModel::new(soc.peak_bw_gbps());

    let p = select_frequency(&points, &pccs, 60.0, 0.05);
    let g = select_frequency(&points, &gables, 60.0, 0.05);
    assert!(
        p.chosen_mhz <= g.chosen_mhz,
        "PCCS should never pick a higher clock than Gables under contention"
    );
    let saved = savings_pct(
        dynamic_power_rel(p.chosen_mhz, 1377.0),
        dynamic_power_rel(g.chosen_mhz, 1377.0),
    );
    assert!(saved >= 0.0);
}

#[test]
fn core_count_exploration_flags_memory_bound_saturation() {
    let soc = SocConfig::xavier();
    let cpu = soc.pu_index("CPU").unwrap();
    let kernel = KernelDesc::memory_streaming("stream", 0.4);
    let model = PccsModel::xavier_cpu_paper();
    let points = explore_core_counts(&soc, cpu, &kernel, &[2, 4, 8], &model, 40.0, HORIZON);
    let chosen = select_core_count(&points, 0.25);
    // A strongly memory-bound kernel should not need the full core count.
    assert!(chosen <= 8);
    let area_saved = savings_pct(area_rel(chosen, 8), 1.0);
    assert!(area_saved >= 0.0);
}
