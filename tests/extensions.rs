//! Integration tests of the paper-Section-5 extensions: multi-MC memory
//! systems, trace-driven simulation, phase detection, and power-budgeted
//! selection — exercised together across crates.

use pccs_core::{PccsModel, SlowdownModel};
use pccs_dram::config::DramConfig;
use pccs_dram::multi::MultiMcSystem;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::trace::{format_trace, parse_trace, ReplayMode, TraceRecord, TraceSource};
use pccs_dram::traffic::StreamTraffic;
use pccs_dram::ReqKind;
use pccs_dse::freq::profile_frequencies;
use pccs_dse::power_budget::select_under_power_budget;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::phases::{detect_phases, to_phased_workload};

#[test]
fn multi_mc_contention_still_shows_three_region_flavour() {
    // A victim and an aggressor over a 2-MC Xavier memory: the victim's
    // bandwidth under growing pressure should fall then stabilize, as with
    // a single MC.
    let run = |pressure: f64| {
        let mut sys = MultiMcSystem::new(DramConfig::xavier(), 2, PolicyKind::Atlas);
        sys.add_generator(
            StreamTraffic::builder(SourceId(0))
                .demand_gbps(60.0)
                .row_locality(0.92)
                .window(96)
                .seed(5)
                .build(),
        );
        if pressure > 0.0 {
            for s in 1..=4 {
                sys.add_generator(
                    StreamTraffic::builder(SourceId(s))
                        .demand_gbps(pressure / 4.0)
                        .row_locality(0.9)
                        .window(48)
                        .seed(40 + s as u64)
                        .build(),
                );
            }
        }
        sys.run(30_000).source_bw_gbps(SourceId(0))
    };
    let alone = run(0.0);
    let mid = run(80.0);
    let high = run(140.0);
    assert!(alone > 40.0, "standalone victim too slow: {alone:.1}");
    assert!(mid <= alone + 2.0);
    // The exact ratio depends on the generators' RNG stream; 0.5 checks
    // "falls then levels off" without pinning a particular sequence.
    assert!(
        high > mid * 0.5,
        "no stabilization: mid {mid:.1} -> high {high:.1}"
    );
}

#[test]
fn trace_replay_reproduces_generator_locality() {
    // Record a synthetic trace with strong locality, replay it, and check
    // the row-hit behaviour carries over.
    let records: Vec<TraceRecord> = (0..512)
        .map(|i| TraceRecord {
            cycle: i,
            addr: i * 64,
            kind: if i % 3 == 0 {
                ReqKind::Write
            } else {
                ReqKind::Read
            },
        })
        .collect();
    let text = format_trace(&records);
    let parsed = parse_trace(&text).expect("round trip");
    assert_eq!(parsed.len(), 512);

    let mut sys = DramSystem::new(DramConfig::cmp_study(), PolicyKind::FrFcfs);
    sys.add_generator(TraceSource::new(SourceId(0), parsed, ReplayMode::Timed));
    let out = sys.run(4_000);
    assert_eq!(out.completed[&SourceId(0)], 512);
    assert!(
        out.row_hit_pct() > 80.0,
        "sequential trace should hit rows: {:.1}%",
        out.row_hit_pct()
    );
}

#[test]
fn phases_to_prediction_pipeline() {
    // Bandwidth series -> phases -> PhasedWorkload -> prediction.
    let mut series = vec![30.0; 60];
    series.extend(vec![100.0; 40]);
    let phases = detect_phases(&series, 15.0, 3);
    assert_eq!(phases.len(), 2);
    let workload = to_phased_workload("two-phase", &phases);
    let model = PccsModel::xavier_gpu_paper();
    let rs = workload.predict_piecewise(&model, 50.0);
    assert!(rs > 0.0 && rs <= 100.0);
    // The heavy phase must pull the piecewise prediction below the pure
    // light-phase prediction.
    assert!(rs < model.relative_speed_pct(30.0, 50.0));
}

#[test]
fn power_budget_pipeline_runs_on_simulated_profiles() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let kernel = KernelDesc::memory_streaming("stream", 12.0);
    let freqs = [600.0, 1000.0, 1377.0];
    let points = profile_frequencies(&soc, gpu, &kernel, &freqs, 15_000);
    let model = PccsModel::xavier_gpu_paper();
    let choice = select_under_power_budget(&points, &model, 40.0, 0.5, 1377.0);
    assert!(choice.power_rel <= 0.5 + 1e-9);
    assert!(freqs.contains(&choice.chosen_mhz));
    assert_eq!(choice.candidates.len(), 3);
}
