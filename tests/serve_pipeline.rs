//! Workspace-level integration tests for the `pccs-serve` serving loop:
//! seed determinism of the exported JSONL and end-to-end strict admission.

use pccs_sched::policy::{ObliviousGreedy, PccsPolicy};
use pccs_serve::request::contended_classes;
use pccs_serve::{
    boxed_models, paper_models, run_serve, AdmissionPolicy, ArrivalProcess, ServeConfig,
    ServeReport,
};
use pccs_soc::soc::SocConfig;
use pccs_telemetry::export;

fn serve_once(policy_name: &str, cfg: &ServeConfig) -> ServeReport {
    let soc = SocConfig::xavier();
    let classes = contended_classes();
    let models = paper_models(&soc);
    match policy_name {
        "greedy" => run_serve(
            &soc,
            &classes,
            &mut ObliviousGreedy,
            boxed_models(&models),
            cfg,
        ),
        "pccs" => {
            let mut policy = PccsPolicy::new(boxed_models(&models));
            run_serve(&soc, &classes, &mut policy, boxed_models(&models), cfg)
        }
        other => panic!("unknown policy {other}"),
    }
    .expect("contended classes serve on Xavier")
}

fn quick(rate: f64) -> ServeConfig {
    ServeConfig {
        arrivals: ArrivalProcess::Poisson {
            rate_per_mcycle: rate,
        },
        duration: 400_000,
        ..ServeConfig::quick()
    }
}

#[test]
fn same_seed_runs_export_byte_identical_jsonl() {
    let cfg = quick(8.0);
    let a = serve_once("greedy", &cfg);
    let b = serve_once("greedy", &cfg);
    let jsonl_a = export::jsonl_records("request", &a.outcomes);
    let jsonl_b = export::jsonl_records("request", &b.outcomes);
    assert!(!jsonl_a.is_empty(), "no requests served");
    assert_eq!(jsonl_a, jsonl_b, "same-seed serve runs must be bit-equal");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn different_seeds_change_the_arrival_pattern() {
    let cfg = quick(8.0);
    let other = ServeConfig {
        seed: 7,
        ..cfg.clone()
    };
    let a = serve_once("greedy", &cfg);
    let b = serve_once("greedy", &other);
    assert_ne!(
        export::jsonl_records("request", &a.outcomes),
        export::jsonl_records("request", &b.outcomes),
        "distinct seeds should produce distinct request streams"
    );
}

#[test]
fn strict_admission_never_admits_past_the_predicted_deadline() {
    // Overload the machine so strict admission has sheds to make.
    let cfg = ServeConfig {
        admission: AdmissionPolicy::Strict,
        ..quick(40.0)
    };
    let report = serve_once("pccs", &cfg);
    assert!(report.offered > 0);
    for o in &report.outcomes {
        if let (true, Some(d)) = (o.admitted, o.deadline) {
            assert!(
                o.predicted_finish <= d as f64,
                "request {} admitted though predicted to finish at {} > deadline {}",
                o.id,
                o.predicted_finish,
                d
            );
        }
    }
    // Overloaded strict serving must actually shed something.
    assert!(
        report.shed > 0,
        "rate 40/Mcycle should overload Xavier, yet nothing was shed"
    );
}

#[test]
fn report_accounting_is_consistent_under_load() {
    let report = serve_once("pccs", &quick(12.0));
    assert_eq!(report.offered, report.admitted + report.shed);
    assert_eq!(report.admitted, report.completed);
    assert_eq!(report.outcomes.len(), report.offered);
    let class_offered: usize = report.classes.iter().map(|c| c.offered).sum();
    assert_eq!(class_offered, report.offered);
    assert!(report.p99_latency >= report.p50_latency);
}
