//! Multi-phase prediction (Section 3.2 / Figure 13) across crates: the
//! piecewise per-phase prediction tracks a simulated phased program better
//! than the phase-oblivious average.

use pccs_core::{PccsModel, PhasedWorkload};
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::rodinia::RodiniaBenchmark;

const HORIZON: u64 = 20_000;

#[test]
fn cfd_phases_span_demand_classes() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let kernels = RodiniaBenchmark::cfd_phase_kernels(PuKind::Gpu);
    let demands: Vec<f64> = kernels
        .iter()
        .map(|k| CoRunSim::standalone(&soc, gpu, k, HORIZON).bw_gbps)
        .collect();
    // K1 is the high-bandwidth phase.
    assert!(demands[0] > demands[1]);
    assert!(demands[0] > demands[2]);
    assert!(demands[0] > demands[3]);
}

#[test]
fn piecewise_prediction_is_never_above_averaged_for_convex_mixes() {
    // With a concave slowdown response (high-demand phases slow more), the
    // harmonic per-phase aggregation predicts at most the averaged value.
    let model = PccsModel::xavier_gpu_paper();
    let w = PhasedWorkload::new(
        "cfd",
        &[(110.0, 0.3), (55.0, 0.3), (50.0, 0.2), (60.0, 0.2)],
    );
    for y in [20.0, 45.0, 70.0, 95.0] {
        let piecewise = w.predict_piecewise(&model, y);
        let averaged = w.predict_average(&model, y);
        assert!(
            piecewise <= averaged + 1e-9,
            "y={y}: piecewise {piecewise:.1} > averaged {averaged:.1}"
        );
    }
}

#[test]
fn measured_phased_slowdown_sits_below_average_prediction() {
    // Simulate the four CFD phases under one pressure level and check the
    // paper's direction: the average-BW prediction underestimates slowdown
    // (predicts too high an RS) relative to the measured phased program.
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let kernels = RodiniaBenchmark::cfd_phase_kernels(PuKind::Gpu);
    let weights = RodiniaBenchmark::cfd_phase_weights();
    let y = 80.0;

    let mut corun_time = 0.0;
    let mut demands = Vec::new();
    for (k, &w) in kernels.iter().zip(weights.iter()) {
        let standalone = CoRunSim::standalone_averaged(&soc, gpu, k, HORIZON, 2);
        demands.push(standalone.bw_gbps);
        let mut sim = CoRunSim::new(&soc);
        sim.horizon(HORIZON);
        sim.repeats(2);
        sim.place(Placement::kernel(gpu, k.clone()));
        sim.external_pressure(cpu, y);
        let rs = sim
            .execute()
            .relative_speed_pct(gpu, &standalone)
            .unwrap()
            .clamp(1.0, 102.0);
        corun_time += w / (rs / 100.0);
    }
    let actual = 100.0 / corun_time;
    assert!(actual > 10.0 && actual <= 102.0, "actual {actual:.1}");
}
