//! The paper's headline claim, end to end: a PCCS model constructed only
//! from calibrators predicts the co-run slowdown of *applications* it never
//! saw, more accurately than the Gables proportional-share baseline.

use pccs_core::SlowdownModel;
use pccs_gables::GablesModel;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use pccs_workloads::rodinia::RodiniaBenchmark;

const HORIZON: u64 = 24_000;

fn cfg() -> CalibrationConfig {
    CalibrationConfig {
        demands_gbps: vec![15.0, 40.0, 65.0, 90.0, 115.0, 135.0],
        external_gbps: vec![15.0, 40.0, 65.0, 90.0, 115.0],
        horizon: HORIZON,
        repeats: 2,
        threads: 0,
    }
}

#[test]
fn pccs_beats_gables_on_unseen_benchmarks() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let (pccs, _) = build_model(&soc, gpu, cpu, &cfg()).expect("model builds");
    let gables = GablesModel::new(soc.peak_bw_gbps());

    // Benchmarks spanning the demand classes; none were used in
    // construction.
    let suite = [
        RodiniaBenchmark::Hotspot,
        RodiniaBenchmark::Streamcluster,
        RodiniaBenchmark::Kmeans,
        RodiniaBenchmark::Bfs,
    ];
    let pressures = [30.0, 60.0, 90.0, 120.0];

    let mut pccs_err = 0.0;
    let mut gables_err = 0.0;
    let mut n = 0.0;
    for bench in suite {
        let kernel = bench.kernel(PuKind::Gpu);
        let standalone = CoRunSim::standalone_averaged(&soc, gpu, &kernel, HORIZON, 2);
        for &y in &pressures {
            let mut sim = CoRunSim::new(&soc);
            sim.horizon(HORIZON);
            sim.repeats(2);
            sim.place(Placement::kernel(gpu, kernel.clone()));
            sim.external_pressure(cpu, y);
            let actual = sim
                .execute()
                .relative_speed_pct(gpu, &standalone)
                .unwrap()
                .min(102.0);
            pccs_err += (actual - pccs.relative_speed_pct(standalone.bw_gbps, y)).abs();
            gables_err += (actual - gables.relative_speed_pct(standalone.bw_gbps, y)).abs();
            n += 1.0;
        }
    }
    pccs_err /= n;
    gables_err /= n;
    assert!(
        pccs_err < gables_err,
        "PCCS avg error {pccs_err:.1}% should beat Gables {gables_err:.1}%"
    );
    assert!(
        pccs_err < 15.0,
        "PCCS avg error {pccs_err:.1}% should be usable for design exploration"
    );
}

#[test]
fn gables_predicts_no_slowdown_below_peak() {
    // The failure mode Figure 2 demonstrates: Gables claims zero slowdown
    // whenever total demand is under the peak, yet the measured system
    // already slows down.
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let gables = GablesModel::new(soc.peak_bw_gbps());
    let kernel = RodiniaBenchmark::Srad.kernel(PuKind::Gpu);
    let standalone = CoRunSim::standalone_averaged(&soc, gpu, &kernel, HORIZON, 2);
    let y = 60.0;
    assert!(standalone.bw_gbps + y < soc.peak_bw_gbps());
    assert_eq!(gables.relative_speed_pct(standalone.bw_gbps, y), 100.0);

    let mut sim = CoRunSim::new(&soc);
    sim.horizon(HORIZON);
    sim.repeats(2);
    sim.place(Placement::kernel(gpu, kernel));
    sim.external_pressure(cpu, y);
    let actual = sim.execute().relative_speed_pct(gpu, &standalone).unwrap();
    assert!(
        actual < 99.0,
        "the simulated SoC should contend below peak (measured {actual:.1}%)"
    );
}
