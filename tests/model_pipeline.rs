//! End-to-end construction pipeline: calibrators → sweep matrix → extracted
//! model, on the simulated Xavier — the paper's Section 3.2 methodology.

use pccs_core::{ModelBuilder, Region};
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, sweep, CalibrationConfig};

fn quick_cfg() -> CalibrationConfig {
    CalibrationConfig {
        demands_gbps: vec![15.0, 40.0, 70.0, 100.0, 130.0],
        external_gbps: vec![20.0, 45.0, 70.0, 95.0, 120.0],
        horizon: 20_000,
        repeats: 1,
        threads: 0,
    }
}

#[test]
fn sweep_matrix_is_valid_and_orderly() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let data = sweep(&soc, gpu, cpu, &quick_cfg()).expect("sweep validates");
    assert!(data.rows() >= 3, "enough distinct demand levels");
    assert_eq!(data.cols(), 5);
    // The standalone axis is strictly increasing by construction.
    assert!(data.std_bw.windows(2).all(|w| w[1] > w[0]));
    // Each sample is a valid relative speed.
    for row in &data.rela {
        for &v in row {
            assert!(v > 0.0 && v <= 100.0);
        }
    }
    // The extraction accepts the measured matrix.
    let model = ModelBuilder::new(data)
        .build()
        .expect("extraction succeeds");
    assert!(model.normal_bw <= model.intensive_bw);
    assert!(model.peak_bw > 100.0);
}

#[test]
fn constructed_model_classifies_and_predicts_sanely() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let (model, data) = build_model(&soc, gpu, cpu, &quick_cfg()).expect("model builds");

    // Low-demand kernels are minor-region; the largest measured demand is
    // further toward intensive.
    let lowest = data.std_bw[0];
    assert_eq!(model.region(lowest.min(model.normal_bw)), Region::Minor);

    // Predictions: bounded, and monotone non-increasing in pressure.
    for x in [10.0, 40.0, 80.0] {
        let mut prev = f64::INFINITY;
        for i in 0..12 {
            let y = i as f64 * 12.0;
            let rs = model.predict(x, y);
            assert!((0.0..=100.0).contains(&rs));
            assert!(rs <= prev + 1e-9, "x={x} y={y}");
            prev = rs;
        }
    }
}

#[test]
fn construction_is_processor_centric() {
    // Different PUs of the same SoC produce different models from the same
    // methodology — the paper's processor-centric claim.
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let (gpu_model, _) = build_model(&soc, gpu, cpu, &quick_cfg()).unwrap();
    let (cpu_model, _) = build_model(&soc, cpu, gpu, &quick_cfg()).unwrap();
    let differs = (gpu_model.tbwdc - cpu_model.tbwdc).abs() > 1.0
        || (gpu_model.rate_n - cpu_model.rate_n).abs() > 0.05
        || (gpu_model.intensive_bw - cpu_model.intensive_bw).abs() > 1.0;
    assert!(
        differs,
        "GPU and CPU models should not coincide: {gpu_model:?} vs {cpu_model:?}"
    );
}
