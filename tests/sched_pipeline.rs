//! End-to-end acceptance of the scheduling runtime: on the contended
//! Xavier mix, the PCCS-guided policy must beat the contention-oblivious
//! greedy by at least 10 % of makespan while staying within 5 % of the
//! probing oracle — and every policy must produce a valid, complete
//! schedule.

use pccs_sched::engine::{run_schedule, SchedConfig};
use pccs_sched::policy::all_policies;
use pccs_sched::report::ScheduleReport;
use pccs_sched::{mixes, policy_by_name, Job};
use pccs_soc::soc::SocConfig;
use std::collections::HashMap;

/// A schedule is complete when every submitted job finished, and valid
/// when each job started no earlier than its arrival and no two jobs
/// overlapped on one PU.
fn assert_valid_and_complete(report: &ScheduleReport, jobs: &[Job]) {
    assert_eq!(
        report.jobs.len(),
        jobs.len(),
        "{}: jobs missing from the schedule",
        report.policy
    );
    let mut per_pu: HashMap<usize, Vec<(f64, f64)>> = HashMap::new();
    for outcome in &report.jobs {
        let job = jobs
            .iter()
            .find(|j| j.id == outcome.job_id)
            .unwrap_or_else(|| panic!("{}: unknown job id {}", report.policy, outcome.job_id));
        assert!(
            outcome.start >= job.arrival as f64,
            "{}: {} started before it arrived",
            report.policy,
            job.name
        );
        assert!(
            outcome.finish > outcome.start,
            "{}: {} finished before it started",
            report.policy,
            job.name
        );
        // Standalone and resident runs use independent seeds/phases, so the
        // ratio can read slightly above 100% from measurement noise alone —
        // especially under the quick preset's short horizons.
        assert!(
            outcome.achieved_rs_pct > 0.0 && outcome.achieved_rs_pct <= 101.5,
            "{}: {} achieved RS {}% out of range",
            report.policy,
            job.name,
            outcome.achieved_rs_pct
        );
        per_pu
            .entry(outcome.pu_idx)
            .or_default()
            .push((outcome.start, outcome.finish));
    }
    for (pu, intervals) in &mut per_pu {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in intervals.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0 + 1e-6,
                "{}: two jobs overlap on PU {pu}: {pair:?}",
                report.policy
            );
        }
    }
}

#[test]
fn pccs_beats_greedy_and_tracks_oracle_on_contended_xavier() {
    let soc = SocConfig::xavier();
    let mix = mixes::contended();
    let cfg = SchedConfig::default();
    let mut by_name: HashMap<String, ScheduleReport> = HashMap::new();
    for mut policy in all_policies(&soc) {
        let report = run_schedule(&soc, &mix.name, &mix.jobs, policy.as_mut(), &cfg)
            .expect("contended mix is schedulable on Xavier");
        assert_valid_and_complete(&report, &mix.jobs);
        by_name.insert(report.policy.clone(), report);
    }
    let greedy = by_name["greedy"].makespan;
    let pccs = by_name["pccs"].makespan;
    let oracle = by_name["oracle"].makespan;
    assert!(
        pccs <= 0.90 * greedy,
        "PCCS must beat oblivious greedy by >= 10%: pccs {pccs:.0} vs greedy {greedy:.0} \
         ({:.1}% better)",
        (1.0 - pccs / greedy) * 100.0
    );
    assert!(
        pccs <= 1.05 * oracle,
        "PCCS must stay within 5% of the oracle: pccs {pccs:.0} vs oracle {oracle:.0}"
    );
    // The gap must come from a contention-aware placement, not queueing:
    // greedy traps the FC-heavy AlexNet on the DLA, PCCS routes it away.
    let placed_on = |r: &ScheduleReport| -> String {
        r.jobs
            .iter()
            .find(|j| j.name == "Alexnet")
            .expect("AlexNet completes")
            .pu
            .clone()
    };
    assert_eq!(placed_on(&by_name["greedy"]), "DLA");
    assert_ne!(placed_on(&by_name["pccs"]), "DLA");
}

#[test]
fn every_mix_schedules_validly_under_cheap_policies() {
    // The remaining mixes and SoCs, under the cheap policies and the quick
    // engine preset: completeness and validity only (performance is the
    // contended test's and the experiment suite's business).
    let cfg = SchedConfig::quick();
    for soc in [SocConfig::xavier(), SocConfig::snapdragon855()] {
        for mix in mixes::all() {
            let mix = mix.scaled(0.2);
            for name in ["round-robin", "greedy", "oracle"] {
                let mut policy = policy_by_name(&soc, name).expect("bundled policy");
                let report = run_schedule(&soc, &mix.name, &mix.jobs, policy.as_mut(), &cfg)
                    .expect("bundled mixes are schedulable");
                assert_valid_and_complete(&report, &mix.jobs);
            }
        }
    }
}
