//! Pre-silicon design exploration (Sections 3.4 / 4.3): find the lowest GPU
//! frequency and the smallest CPU core count that keep a workload's co-run
//! slowdown within budget, and report the power/area saved versus what the
//! contention-blind Gables model would provision.
//!
//! ```text
//! cargo run --release --example soc_design_explorer
//! ```

use pccs_dse::cost::{area_rel, dynamic_power_rel, savings_pct};
use pccs_dse::explore::{explore_core_counts, select_core_count};
use pccs_dse::freq::{ground_truth_frequency, profile_frequencies, select_frequency};
use pccs_dse::memory::{explore_memory_configs, select_memory_config};
use pccs_gables::GablesModel;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use pccs_workloads::rodinia::RodiniaBenchmark;

fn main() {
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let cpu = soc.pu_index("CPU").unwrap();
    let horizon = 24_000;
    let external = 50.0; // expected co-runner demand, GB/s
    let budget = 0.10; // allowed co-run slowdown

    println!("constructing the GPU PCCS model...");
    let cfg = CalibrationConfig {
        horizon,
        repeats: 2,
        ..CalibrationConfig::default()
    };
    let (pccs, _) = build_model(&soc, gpu, cpu, &cfg).expect("model builds");
    let gables = GablesModel::new(soc.peak_bw_gbps());

    // --- GPU frequency selection for streamcluster -------------------------
    let kernel = RodiniaBenchmark::Streamcluster.kernel(PuKind::Gpu);
    let freqs = [500.0, 700.0, 900.0, 1100.0, 1377.0];
    let points = profile_frequencies(&soc, gpu, &kernel, &freqs, horizon);

    let by_pccs = select_frequency(&points, &pccs, external, budget);
    let by_gables = select_frequency(&points, &gables, external, budget);
    let truth = ground_truth_frequency(&soc, gpu, cpu, &kernel, &freqs, external, budget, horizon);

    println!(
        "\nGPU frequency for streamcluster @ {external:.0} GB/s external, {:.0}% budget:",
        budget * 100.0
    );
    println!("  ground truth : {:>6.0} MHz", truth.chosen_mhz);
    println!("  PCCS         : {:>6.0} MHz", by_pccs.chosen_mhz);
    println!("  Gables       : {:>6.0} MHz", by_gables.chosen_mhz);
    let power_saved = savings_pct(
        dynamic_power_rel(by_pccs.chosen_mhz, 1377.0),
        dynamic_power_rel(by_gables.chosen_mhz, 1377.0),
    );
    println!("  dynamic power saved by PCCS vs Gables: {power_saved:.1}%");

    // --- CPU core count for a memory-bound kernel --------------------------
    let cpu_kernel = RodiniaBenchmark::Kmeans.kernel(PuKind::Cpu);
    let cpu_points = explore_core_counts(
        &soc,
        cpu,
        &cpu_kernel,
        &[2, 4, 6, 8],
        &pccs,
        external,
        horizon,
    );
    let chosen = select_core_count(&cpu_points, budget);
    println!("\nCPU cores for k-means under the same budget: {chosen} of 8");
    println!(
        "  area saved vs full provisioning: {:.1}%",
        savings_pct(area_rel(chosen, 8), 1.0)
    );
    println!("\nper-core-count predicted co-run performance (rel. to best):");
    for p in &cpu_points {
        println!(
            "  {} cores: demand {:>5.1} GB/s  predicted RS {:>5.1}%  perf {:.2}",
            p.cores, p.demand_gbps, p.predicted_rs_pct, p.corun_perf_rel
        );
    }

    // --- Memory subsystem: how many channels does this workload need? ------
    let candidates = [(4usize, 1.0f64), (6, 1.0), (8, 0.75), (8, 1.0)];
    let mem_points = explore_memory_configs(
        &soc,
        gpu,
        &kernel,
        &pccs,
        external,
        &candidates,
        horizon,
        false,
    );
    println!("\nmemory-subsystem exploration (scaled PCCS, no re-calibration):");
    for p in &mem_points {
        println!(
            "  {} ch @ x{:.2} clock -> peak {:>6.1} GB/s  predicted RS {:>5.1}%",
            p.channels, p.clock_ratio, p.peak_gbps, p.predicted_rs_pct
        );
    }
    let chosen_mem = select_memory_config(&mem_points, 90.0);
    println!(
        "  cheapest config keeping RS >= 90%: {} channels @ x{:.2} ({:.1} GB/s peak)",
        chosen_mem.channels, chosen_mem.clock_ratio, chosen_mem.peak_gbps
    );
}
