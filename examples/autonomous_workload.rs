//! The paper's motivating scenario (Figure 1): an autonomous-vehicle
//! workload whose modules are mapped onto the PUs of an SoC — object
//! recognition on the DLA, trajectory prediction on the GPU, planning on
//! the CPU — all contending for the shared memory.
//!
//! This example predicts each module's co-run slowdown with PCCS, then
//! verifies against the full 3-PU co-run simulation.
//!
//! ```text
//! cargo run --release --example autonomous_workload
//! ```

use pccs_core::SlowdownModel;
use pccs_soc::corun::{CoRunSim, Placement};
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use pccs_workloads::dnn::DnnModel;
use pccs_workloads::rodinia::RodiniaBenchmark;

fn main() {
    let soc = SocConfig::xavier();
    let cpu = soc.pu_index("CPU").unwrap();
    let gpu = soc.pu_index("GPU").unwrap();
    let dla = soc.pu_index("DLA").unwrap();

    // The workload mapping: module -> PU.
    let modules = [
        (
            cpu,
            "planning (streamcluster)",
            RodiniaBenchmark::Streamcluster.kernel(PuKind::Cpu),
        ),
        (
            gpu,
            "trajectory (pathfinder)",
            RodiniaBenchmark::Pathfinder.kernel(PuKind::Gpu),
        ),
        (dla, "perception (ResNet-50)", DnnModel::Resnet50.kernel()),
    ];

    // Standalone profiles (what the design team measures on existing parts).
    let horizon = 30_000;
    let profiles: Vec<_> = modules
        .iter()
        .map(|(pu, _, k)| CoRunSim::standalone_averaged(&soc, *pu, k, horizon, 2))
        .collect();

    // PCCS models per PU (pressure per the paper's convention).
    let cfg = CalibrationConfig {
        horizon,
        repeats: 2,
        ..CalibrationConfig::default()
    };
    println!("constructing per-PU models...");
    let models: Vec<_> = modules
        .iter()
        .map(|(pu, _, _)| {
            let pressure = if *pu == cpu { gpu } else { cpu };
            build_model(&soc, *pu, pressure, &cfg)
                .expect("model builds")
                .0
        })
        .collect();

    // The actual co-run.
    let mut sim = CoRunSim::new(&soc);
    sim.horizon(horizon);
    sim.repeats(2);
    for (pu, _, k) in &modules {
        sim.place(Placement::kernel(*pu, k.clone()));
    }
    let out = sim.execute();

    println!(
        "\n{:<28} {:>9} {:>9} {:>11} {:>11}",
        "module", "x GB/s", "y GB/s", "PCCS RS%", "actual RS%"
    );
    for (i, (pu, name, _)) in modules.iter().enumerate() {
        let x = profiles[i].bw_gbps;
        let y: f64 = profiles
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| p.bw_gbps)
            .sum();
        let predicted = models[i].relative_speed_pct(x, y);
        let actual = out
            .relative_speed_pct(*pu, &profiles[i])
            .expect("mix PU is placed")
            .min(102.0);
        println!("{name:<28} {x:>9.1} {y:>9.1} {predicted:>10.1} {actual:>10.1}");
    }
    println!("\nA design is viable when every module's predicted RS meets its QoS budget.");
}
