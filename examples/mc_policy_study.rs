//! The memory-controller scheduling-policy study (Section 2.3): co-locate a
//! victim core group with a growing aggressor group on the Table 1 CMP
//! configuration and watch how each policy shapes the victim's slowdown
//! curve — proportional decay (FCFS), throughput-first starvation
//! (FR-FCFS), or the flat → drop → flat shape of the fairness-controlled
//! schedulers that PCCS models.
//!
//! ```text
//! cargo run --release --example mc_policy_study
//! ```

use pccs_dram::config::DramConfig;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::traffic::StreamTraffic;

fn group_bw(out: &pccs_dram::sim::SimOutcome, base: usize, n: usize) -> f64 {
    (0..n).map(|s| out.source_bw_gbps(SourceId(base + s))).sum()
}

fn run(policy: PolicyKind, victim_gbps: f64, aggressor_gbps: f64) -> (f64, f64, f64) {
    let config = DramConfig::cmp_study();
    let mut sys = DramSystem::new(config, policy);
    for s in 0..8 {
        sys.add_generator(
            StreamTraffic::builder(SourceId(s))
                .demand_gbps(victim_gbps / 8.0)
                .row_locality(0.95)
                .window(24)
                .seed(3 + s as u64)
                .build(),
        );
    }
    if aggressor_gbps > 0.0 {
        for s in 8..16 {
            sys.add_generator(
                StreamTraffic::builder(SourceId(s))
                    .demand_gbps(aggressor_gbps / 8.0)
                    .row_locality(0.92)
                    .window(24)
                    .seed(71 + s as u64)
                    .build(),
            );
        }
    }
    let out = sys.run(30_000);
    (
        group_bw(&out, 0, 8),
        out.row_hit_pct(),
        out.effective_bw_pct(),
    )
}

fn main() {
    let victim = 48.0;
    let pressures = [0.0, 12.0, 24.0, 36.0, 48.0, 60.0, 80.0, 100.0];

    println!("victim group demand {victim:.0} GB/s on DDR4-3200 (102.4 GB/s peak)\n");
    print!("{:<10}", "policy");
    for p in &pressures[1..] {
        print!("{:>8}", format!("y={p:.0}"));
    }
    println!("{:>8}{:>8}", "RBH%", "eff%");

    for policy in PolicyKind::all() {
        let (standalone, _, _) = run(policy, victim, 0.0);
        print!("{:<10}", policy.label());
        let mut last = (0.0, 0.0);
        for &p in &pressures[1..] {
            let (bw, rbh, eff) = run(policy, victim, p);
            print!("{:>8.1}", 100.0 * bw / standalone.max(1e-9));
            last = (rbh, eff);
        }
        println!("{:>8.1}{:>8.1}", last.0, last.1);
    }
    println!("\nvalues are the victim group's achieved relative speed (%)");
    println!("RBH/eff measured at the highest pressure point (Table 3 metrics)");
}
