//! Quickstart: construct a PCCS model for the simulated Xavier GPU and use
//! it to predict co-run slowdowns of a few kernels — the complete
//! paper workflow in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pccs_core::SlowdownModel;
use pccs_soc::corun::CoRunSim;
use pccs_soc::pu::PuKind;
use pccs_soc::soc::SocConfig;
use pccs_workloads::calibrate::{build_model, CalibrationConfig};
use pccs_workloads::rodinia::RodiniaBenchmark;

fn main() {
    // 1. The SoC under design: NVIDIA Jetson AGX Xavier (simulated).
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").expect("Xavier has a GPU");
    let cpu = soc.pu_index("CPU").expect("Xavier has a CPU");
    println!("SoC: {} (peak {:.1} GB/s)", soc.name, soc.peak_bw_gbps());

    // 2. Construct the GPU's slowdown model from calibrators only — no
    //    application co-runs are ever measured (Section 3.2).
    let cfg = CalibrationConfig {
        horizon: 30_000,
        repeats: 2,
        ..CalibrationConfig::default()
    };
    println!("constructing the GPU model (calibrator sweep)...");
    let (model, data) = build_model(&soc, gpu, cpu, &cfg).expect("construction succeeds");
    println!(
        "constructed from a {}x{} matrix: normalBW={:.1}  intensiveBW={:.1}  \
         CBP={:.1}  TBWDC={:.1}  rateN={:.2}",
        data.rows(),
        data.cols(),
        model.normal_bw,
        model.intensive_bw,
        model.cbp,
        model.tbwdc,
        model.rate_n
    );

    // 3. Predict arbitrary workloads the model has never seen.
    println!(
        "\n{:<16} {:>10} {:>22}",
        "benchmark", "demand", "RS% @ 30/60/90 GB/s"
    );
    for bench in [
        RodiniaBenchmark::Hotspot,
        RodiniaBenchmark::Streamcluster,
        RodiniaBenchmark::Bfs,
    ] {
        let kernel = bench.kernel(PuKind::Gpu);
        let profile = CoRunSim::standalone(&soc, gpu, &kernel, 30_000);
        let rs = |y: f64| model.relative_speed_pct(profile.bw_gbps, y);
        println!(
            "{:<16} {:>7.1} GB/s {:>6.1} {:>6.1} {:>6.1}",
            bench.label(),
            profile.bw_gbps,
            rs(30.0),
            rs(60.0),
            rs(90.0)
        );
    }
}
