//! A tour of the reproduction's paper-Section-5 extensions: multi-MC
//! memory systems, trace-driven simulation, bandwidth phase detection, and
//! power-budgeted frequency selection.
//!
//! ```text
//! cargo run --release --example extensions_tour
//! ```

use pccs_core::PccsModel;
use pccs_dram::config::DramConfig;
use pccs_dram::multi::MultiMcSystem;
use pccs_dram::policy::PolicyKind;
use pccs_dram::request::SourceId;
use pccs_dram::sim::DramSystem;
use pccs_dram::trace::{format_trace, parse_trace, ReplayMode, TraceRecord, TraceSource};
use pccs_dram::traffic::StreamTraffic;
use pccs_dram::ReqKind;
use pccs_dse::freq::profile_frequencies;
use pccs_dse::power_budget::select_under_power_budget;
use pccs_soc::kernel::KernelDesc;
use pccs_soc::soc::SocConfig;
use pccs_workloads::phases::{detect_phases, to_phased_workload};

fn main() {
    // --- 1. Multi-MC: the same traffic over 1 vs 2 controllers -----------
    println!("== multi-MC (Section 5: 'Address mapping and multi-MC') ==");
    for mcs in [1usize, 2] {
        let mut sys = MultiMcSystem::new(DramConfig::xavier(), mcs, PolicyKind::Atlas);
        for s in 0..4 {
            sys.add_generator(
                StreamTraffic::builder(SourceId(s))
                    .demand_gbps(25.0)
                    .row_locality(0.93)
                    .window(64)
                    .seed(9 + s as u64)
                    .build(),
            );
        }
        let out = sys.run(30_000);
        let total: f64 = (0..4).map(|s| out.source_bw_gbps(SourceId(s))).sum();
        println!(
            "  {mcs} MC(s): total {total:.1} GB/s, RBH {:.1}%",
            out.row_hit_pct()
        );
    }

    // --- 2. Trace-driven simulation ---------------------------------------
    println!("\n== trace replay (Pin-style front end) ==");
    let records: Vec<TraceRecord> = (0..256)
        .map(|i| TraceRecord {
            cycle: i * 3,
            addr: i * 64,
            kind: if i % 4 == 0 {
                ReqKind::Write
            } else {
                ReqKind::Read
            },
        })
        .collect();
    let text = format_trace(&records);
    let parsed = parse_trace(&text).expect("round-trip");
    let mut sys = DramSystem::new(DramConfig::cmp_study(), PolicyKind::FrFcfs);
    sys.add_generator(TraceSource::new(SourceId(0), parsed, ReplayMode::Timed));
    let out = sys.run(5_000);
    println!(
        "  replayed {} requests, avg latency {:.0} cycles, RBH {:.1}%",
        out.completed[&SourceId(0)],
        out.avg_latency(SourceId(0)),
        out.row_hit_pct()
    );

    // --- 3. Phase detection ------------------------------------------------
    println!("\n== phase detection (multi-phase programs, Fig. 13) ==");
    let mut series = vec![25.0; 50];
    series.extend(vec![95.0; 30]);
    series.extend(vec![55.0; 40]);
    let phases = detect_phases(&series, 12.0, 3);
    for (i, p) in phases.iter().enumerate() {
        println!(
            "  phase {}: samples {}..{} mean {:.1} GB/s",
            i + 1,
            p.start,
            p.end,
            p.mean_bw
        );
    }
    let workload = to_phased_workload("traced-app", &phases);
    let model = PccsModel::xavier_gpu_paper();
    println!(
        "  piecewise RS @ 60 GB/s external: {:.1}% (vs {:.1}% from the average)",
        workload.predict_piecewise(&model, 60.0),
        workload.predict_average(&model, 60.0)
    );

    // --- 4. Power-budgeted frequency selection -----------------------------
    println!("\n== power-budgeted DVFS (Section 5: power budget) ==");
    let soc = SocConfig::xavier();
    let gpu = soc.pu_index("GPU").unwrap();
    let kernel = KernelDesc::memory_streaming("stream", 15.0);
    let freqs = [500.0, 700.0, 900.0, 1100.0, 1377.0];
    let points = profile_frequencies(&soc, gpu, &kernel, &freqs, 20_000);
    for budget in [1.0, 0.5, 0.25] {
        let choice = select_under_power_budget(&points, &model, 50.0, budget, 1377.0);
        println!(
            "  budget {:>4.0}% of peak power -> {:.0} MHz (predicted perf {:.3} lines/cycle)",
            budget * 100.0,
            choice.chosen_mhz,
            choice.predicted_perf
        );
    }
}
