//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serde replacement: the same trait names and derive
//! macros the codebase already uses, backed by a single JSON-like
//! [`Value`] data model instead of serde's visitor machinery. The sibling
//! `serde_json` shim serializes that model to text.
//!
//! Supported surface (deliberately small):
//! * `#[derive(Serialize, Deserialize)]` on structs (named, tuple, unit)
//!   and enums (unit, newtype, tuple, and struct variants), no field
//!   attributes;
//! * impls for the primitives, `String`, `Option`, `Vec`, arrays, tuples,
//!   `Box`, and the std map types with stringifiable keys.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the JSON-like data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from the JSON-like data model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| DeError::expected("longer tuple", v))?,
                            )?,
                        )+);
                        Ok(out)
                    }
                    _ => Err(DeError::expected("tuple (array)", v)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Renders a serialized key value as a JSON object key (serde_json's map
/// behaviour: strings stay, numbers become their decimal text).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_string(),
    }
}

/// Parses an object key back into a [`Value`] for key deserialization.
fn key_from_string(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        Value::Number(Number::U(u))
    } else if let Ok(i) = s.parse::<i64>() {
        Value::Number(Number::I(i))
    } else if let Ok(f) = s.parse::<f64>() {
        Value::Number(Number::F(f))
    } else {
        Value::String(s.to_owned())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let f = f64::from_value(&1.5f64.to_value()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<String> = Some("hi".into());
        assert_eq!(Option::<String>::from_value(&opt.to_value()).unwrap(), opt);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_owned());
        let v = m.to_value();
        match &v {
            Value::Object(o) => assert!(o.contains_key("3")),
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(BTreeMap::<u64, String>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u64, 2.5f64);
        let v = t.to_value();
        assert!(matches!(&v, Value::Array(a) if a.len() == 2));
        assert_eq!(<(u64, f64)>::from_value(&v).unwrap(), t);
    }
}
