//! The JSON-like data model shared by the vendored `serde` and
//! `serde_json` shims.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number that keeps integers exact instead of routing everything
/// through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U(u64),
    /// A signed (negative) integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.is_finite() {
                    if x == x.trunc() && x.abs() < 1e15 {
                        // Keep integral floats readable and round-trippable.
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-ordered object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Writes `s` as a JSON string literal with escapes.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact JSON rendering.
    pub fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.render(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}
