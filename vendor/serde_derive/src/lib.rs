//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's `to_value`/`from_value` traits. The parser
//! works directly on `proc_macro` token trees (no `syn`/`quote` available
//! offline) and supports the shapes this workspace uses:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs;
//! * enums with unit, newtype, tuple, and struct variants;
//! * no generics and no `#[serde(...)]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Skips leading attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracket group of the attribute.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a field-list group body on top-level commas.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field name from one named-field token run
/// (`[attrs] [vis] name : Type`).
fn named_field(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
    None
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    match g.delimiter() {
        Delimiter::Brace => {
            let names = split_top_level(g.stream())
                .iter()
                .filter_map(|run| named_field(run))
                .collect();
            Fields::Named(names)
        }
        Delimiter::Parenthesis => Fields::Tuple(split_top_level(g.stream()).len()),
        _ => Fields::Unit,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generics (type `{name}`)"
            ));
        }
    }
    match kind_kw.as_str() {
        "struct" => {
            // Either `{ fields }`, `( fields );`, or `;`.
            match iter.peek() {
                Some(TokenTree::Group(_)) => {
                    let Some(TokenTree::Group(g)) = iter.next() else {
                        unreachable!()
                    };
                    Ok(Item {
                        name,
                        kind: ItemKind::Struct(parse_fields_group(&g)),
                    })
                }
                _ => Ok(Item {
                    name,
                    kind: ItemKind::Struct(Fields::Unit),
                }),
            }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = iter.next() else {
                return Err(format!("enum `{name}` has no body"));
            };
            let mut variants = Vec::new();
            for run in split_top_level(body.stream()) {
                let mut vi = run.iter().peekable();
                // Skip attributes on the variant.
                let mut name_tok = None;
                while let Some(tt) = vi.next() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '#' => {
                            vi.next();
                        }
                        TokenTree::Ident(id) => {
                            name_tok = Some(id.to_string());
                            break;
                        }
                        _ => break,
                    }
                }
                let Some(vname) = name_tok else { continue };
                let fields = match vi.next() {
                    Some(TokenTree::Group(g)) => parse_fields_group(g),
                    _ => Fields::Unit,
                };
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Ok(Item {
                name,
                kind: ItemKind::Enum(variants),
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                         let mut m = ::std::collections::BTreeMap::new();\n\
                         m.insert(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(x0));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "let mut fm = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_struct_ctor(path: &str, fields: &[String], src: &str) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: match {src}.get(\"{f}\") {{\n\
             Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
             .map_err(|_| ::serde::DeError(::std::format!(\"missing field `{f}`\")))?,\n\
             }},\n"
        ));
    }
    s.push('}');
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let ctor = named_struct_ctor(name, fields, "obj");
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", v))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(arr.get({i}).ok_or_else(|| ::serde::DeError::expected(\"array of {n}\", v))?)?"
                    )
                })
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(parr.get({i}).ok_or_else(|| ::serde::DeError::expected(\"array of {n}\", payload))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let parr = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", payload))?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            gets.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let ctor = named_struct_ctor(&format!("{name}::{vn}"), fields, "pobj");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let pobj = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", payload))?;\n\
                             ::std::result::Result::Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, payload) = o.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum tag\", v)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

fn derive(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| panic!("vendored serde derive generated invalid code: {e}")),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the shim's `serde::Serialize` (`to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize` (`from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, gen_deserialize)
}
