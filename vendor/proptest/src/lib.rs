//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, tuples, `prop_map`,
//! `prop::sample::select`, `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()`, and the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted regression
//! corpus: each property runs a fixed number of randomly sampled cases
//! (default 64, override with `PROPTEST_CASES`) from a seed derived from
//! the test name, so failures are reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a sampled case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; it is resampled.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A precondition rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type produced by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for arbitrary booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy for full-range integers.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod prop {
    //! The `prop::` combinator namespace.

    pub mod sample {
        //! Sampling from explicit collections.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy drawing uniformly from a fixed vector.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Draws uniformly from `items`.
        ///
        /// # Panics
        ///
        /// Panics when `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires a non-empty vector");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }

    pub mod collection {
        //! Collection strategies.

        use crate::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing vectors with random lengths and elements.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// Vectors of `elem` samples with a length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Some` three times out of four.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` or `Some(inner sample)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.75) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// FNV-1a hash of the test name, used as the per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of cases per property (`PROPTEST_CASES` env override).
fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: samples cases until enough pass, panicking on the
/// first failure. Called by the expansion of [`proptest!`].
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let cases = case_count();
    let mut rng = TestRng::seed_from_u64(name_seed(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cases.saturating_mul(256),
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}

/// Declares property tests. Each function body runs once per sampled case;
/// arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |prop_rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), prop_rng);)+
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}",
                    l,
                    r,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Rejects the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..=16).contains(&pair));
            prop_assert!(u32::from(flag) <= 1);
        }

        #[test]
        fn collections_and_select(
            xs in prop::collection::vec(0u64..50, 1..20),
            w in prop::sample::select(vec![4u32, 8u32]),
            opt in prop::option::of(0.0f64..15.0),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(w == 4 || w == 8);
            if let Some(v) = opt {
                prop_assert!((0.0..15.0).contains(&v));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        crate::run_cases("always_fails", |_| Err(crate::TestCaseError::fail("nope")));
    }
}
