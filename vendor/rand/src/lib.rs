//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::SmallRng`] (a SplitMix64 generator — statistically
//! strong enough for the simulator's address/locality sampling and fully
//! deterministic per seed), the [`SeedableRng`] and [`Rng`] traits, and
//! uniform sampling over the integer/float range types the workspace uses.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructor (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Unbiased-enough integer sampling in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is < 2^-64
/// per draw, irrelevant for simulation sampling).
#[inline]
fn below<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(below(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_signed_ranges!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = SmallRng { state };
            // Decorrelate trivially related seeds (0, 1, 2, ...).
            rng.next_u64();
            rng
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        let mut rng = SmallRng::seed_from_u64(12);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
