//! Offline stand-in for the `serde_json` crate, built on the vendored
//! `serde` shim's [`Value`] model: compact and pretty serialization plus a
//! recursive-descent JSON parser.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::{Number, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this shim; returns `Result` for serde_json API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this shim; returns `Result` for serde_json API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render_pretty(&mut out, 0);
    Ok(out)
}

/// Converts a value into the JSON data model.
///
/// # Errors
///
/// Infallible in this shim; returns `Result` for serde_json API parity.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.5e2").unwrap(), -150.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn parses_containers() {
        let v: Vec<f64> = from_str("[1, 2.5, 3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, 3.0]);
        let m: std::collections::BTreeMap<String, u64> = from_str("{\"a\": 1, \"b\": 2}").unwrap();
        assert_eq!(m["a"], 1);
        assert_eq!(m["b"], 2);
    }

    #[test]
    fn round_trips_pretty() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("xs".to_owned(), vec![1u64, 2, 3]);
        let text = to_string_pretty(&m).unwrap();
        assert!(text.contains("\"xs\""));
        let back: std::collections::BTreeMap<String, Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("nope").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("1 2").is_err());
    }

    #[test]
    fn value_escape_round_trip() {
        let v = Value::String("say \"hi\"\n\ttab".to_owned());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
