//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `black_box`,
//! `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`/`measurement_time` chaining, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! warmup-then-timed-batches loop reporting mean/min wall time per
//! iteration — good enough for coarse regression checks, with none of the
//! real crate's statistics, plotting, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const DEFAULT_MEASUREMENT_TIME: Duration = Duration::from_secs(3);
const WARMUP_FRACTION: f64 = 0.2;

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark with default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLE_SIZE, DEFAULT_MEASUREMENT_TIME, &mut f);
        self
    }

    /// Starts a named group whose settings apply to its benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            measurement_time: DEFAULT_MEASUREMENT_TIME,
        }
    }
}

/// A group of benchmarks sharing sample-size and time settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Passed to the bench closure; call [`Bencher::iter`] with the code under
/// measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, first calibrating how many iterations fit a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations take ~1ms, so short closures are
        // batched and Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        // Warmup.
        let warmup = self.measurement_time.mul_f64(WARMUP_FRACTION);
        let warm_start = Instant::now();
        while warm_start.elapsed() < warmup {
            for _ in 0..iters {
                black_box(f());
            }
        }

        // Timed samples within the measurement budget.
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
        self.iters_per_sample = iters;
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let per_iter = |d: &Duration| d.as_secs_f64() / b.iters_per_sample as f64;
    let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
    println!(
        "{name}: mean {} / iter, best {} / iter ({} samples x {} iters)",
        fmt_seconds(mean),
        fmt_seconds(min),
        b.samples.len(),
        b.iters_per_sample
    );
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(!b.samples.is_empty());
        assert!(count > 0);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
