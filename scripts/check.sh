#!/usr/bin/env bash
# The full pre-merge gate: format, lints, docs, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
cargo test --release --workspace
