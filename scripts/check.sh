#!/usr/bin/env bash
# The full pre-merge gate: format, lints, build, docs, tests.
# Runs every step even after a failure and reports all failures at the end,
# so one iteration surfaces everything that needs fixing.
set -uo pipefail
cd "$(dirname "$0")/.."

failed=()
step() {
  local name=$1
  shift
  echo "==> ${name}: $*"
  if ! "$@"; then
    failed+=("${name}")
  fi
}

step fmt    cargo fmt --all -- --check
step clippy cargo clippy --workspace --all-targets -- -D warnings
step build  cargo build --release --workspace
step doc    cargo doc --no-deps --workspace
step test   cargo test --release --workspace

if ((${#failed[@]})); then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "all checks passed"
