#!/usr/bin/env bash
# The full pre-merge gate: format, lints, build, docs, tests.
# Runs every step even after a failure and reports all failures at the end,
# so one iteration surfaces everything that needs fixing.
set -uo pipefail
cd "$(dirname "$0")/.."

failed=()
step() {
  local name=$1
  shift
  echo "==> ${name}: $*"
  if ! "$@"; then
    failed+=("${name}")
  fi
}

# The serving loop must be seed-deterministic: the same `repro serve`
# sweep at two worker counts must emit byte-identical results. The
# manifest header records wall times, so compare from "result" down.
serve_determinism() {
  local dir=target/serve-determinism out1 out2
  rm -rf "${dir}" && mkdir -p "${dir}/j1" "${dir}/j2"
  ./target/release/repro serve --quick --jobs 1 --metrics-out "${dir}/j1" >/dev/null || return 1
  ./target/release/repro serve --quick --jobs 2 --metrics-out "${dir}/j2" >/dev/null || return 1
  out1=$(sed -n '/"result"/,$p' "${dir}/j1/serve.json")
  out2=$(sed -n '/"result"/,$p' "${dir}/j2/serve.json")
  [[ -n ${out1} ]] && diff <(echo "${out1}") <(echo "${out2}")
}

# The event-driven memory engine must be externally indistinguishable
# from the cycle-exact reference (DESIGN.md §11): the same quick co-run
# on both engines must print byte-identical results.
engine_parity() {
  local cyc evt
  cyc=$(./target/release/pccs corun --soc xavier --pu GPU --bench streamcluster \
    --quick --engine cycle) || return 1
  evt=$(./target/release/pccs corun --soc xavier --pu GPU --bench streamcluster \
    --quick --engine event) || return 1
  diff <(echo "${cyc}") <(echo "${evt}")
}

# The committed model-accuracy baseline (ACCURACY_<host>_<date>.json,
# DESIGN.md §12) must exist and satisfy the pccs-accuracy/v1 schema.
accuracy_baseline() {
  local f found=0
  for f in ACCURACY_*.json; do
    [[ -e ${f} ]] || break
    found=1
    ./target/release/pccs audit --validate "${f}" || return 1
  done
  if ((!found)); then
    echo "no committed ACCURACY_*.json baseline at the repo root" >&2
    return 1
  fi
}

# Every workspace crate must appear in the rustdoc output; a crate missing
# from target/doc means it fell out of the doc build (e.g. dropped from the
# workspace members) without anyone noticing.
doc_complete() {
  local missing=0 name found candidate
  for manifest in crates/*/Cargo.toml; do
    # Binary-only crates are documented under their [[bin]] name, not the
    # package name, so accept any name declared in the manifest.
    found=0
    while IFS= read -r name; do
      candidate="target/doc/${name//-/_}"
      [[ -d ${candidate} ]] && found=1
    done < <(sed -n 's/^name = "\(.*\)"/\1/p' "${manifest}")
    if ((!found)); then
      echo "crate $(dirname "${manifest}") missing from target/doc" >&2
      missing=1
    fi
  done
  return "${missing}"
}

step fmt    cargo fmt --all -- --check
step clippy cargo clippy --workspace --all-targets -- -D warnings
step build  cargo build --release --workspace
step lint   ./target/release/pccs-lint --root .
# Workspace-rule smoke: the full two-phase analysis via the CLI (symbol
# index + cross-file rules), restricted to workspace scope so a clean
# tree proves the dead-pub/drift/cycle/expiry/stale-waiver rules pass.
step lint-workspace ./target/release/pccs lint --scope workspace
# Diff-aware smoke: `pccs lint --changed` must run end to end against
# the previous commit (its findings are a subset of the full run).
step lint-changed ./target/release/pccs lint --changed HEAD~1
step sched-smoke ./target/release/pccs sched --quick
# Serving smoke: the online loop must run end to end under the greedy
# policy (pccs-policy calibration is exercised by the repro sweep below).
step serve-smoke ./target/release/pccs serve --quick --policy greedy
step serve-determinism serve_determinism
# Repro smoke also exports a Perfetto trace, validated below.
step repro-smoke ./target/release/repro oblivious --quick --jobs 2 \
  --trace-out target/trace-smoke.json
# Trace smoke: the exported trace must be structurally sound with the
# nesting depth and counter coverage DESIGN.md §9 promises.
step trace-check ./target/release/pccs trace-check --file target/trace-smoke.json \
  --min-depth 3 --min-counters 10
# Bench smoke: a quick `pccs bench` run must produce a schema-valid
# BENCH_*.json (the CLI validates before writing; failure exits non-zero).
step bench-smoke ./target/release/pccs bench --quick --out target/BENCH_smoke.json
# Audit smoke: a quick `pccs audit` must replay the validation figures
# with the prediction-audit ledger on and produce a schema-valid
# ACCURACY_*.json (the CLI validates before writing, and run_accuracy
# asserts the ledger MAE matches each figure's headline error).
step audit-smoke ./target/release/pccs audit --quick --out target/ACCURACY_smoke.json
# The committed accuracy baseline must pass schema validation.
step accuracy-baseline accuracy_baseline
# Conformance smoke: a short co-run with the DDR protocol sanitizer
# attached must replay with zero JEDEC timing violations.
step conformance-smoke ./target/release/pccs corun --soc xavier --pu GPU \
  --bench streamcluster --quick --conformance
# Engine-parity smoke: the event fast path and the cycle-exact reference
# must agree byte-for-byte on a real co-run.
step engine-parity engine_parity
step doc    cargo doc --no-deps --workspace
step doc-complete doc_complete
step test   cargo test --release --workspace

if ((${#failed[@]})); then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "all checks passed"
