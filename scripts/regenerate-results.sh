#!/usr/bin/env bash
# Regenerates the reference outputs stored under results/.
# Full fidelity: expect ~20 minutes on a 16-core machine.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pccs-experiments -p pccs-cli
./target/release/repro --curves --metrics-out results/json all | tee results/repro-output.txt
echo "results written to results/"

# Refresh the committed benchmark baseline (BENCH_<host>_<date>.json at the
# repo root; full workload sizes — see DESIGN.md §9.3).
./target/release/pccs bench
echo "benchmark baseline refreshed"

# Refresh the committed model-accuracy baseline (ACCURACY_<host>_<date>.json
# at the repo root; full validation-figure sweeps — see DESIGN.md §12).
./target/release/pccs audit
echo "accuracy baseline refreshed"
