#!/usr/bin/env bash
# Regenerates the reference outputs stored under results/.
# Full fidelity: expect ~20 minutes on a 16-core machine.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p pccs-experiments
./target/release/repro --curves --metrics-out results/json all | tee results/repro-output.txt
echo "results written to results/"
